package rrset

import (
	"fmt"
	"testing"

	"asti/internal/bitset"
	"asti/internal/diffusion"
	"asti/internal/estimator"
	"asti/internal/gen"
	"asti/internal/rng"
)

// TestCorollary34ResidualSandwich validates Corollary 3.4: on a residual
// graph G_i (original graph with some nodes activated/masked), the
// sampled mRR estimator η_i·Pr[v ∈ R] must sandwich the exact expected
// truncated marginal spread within [(1−1/e)·E[Γ], E[Γ]].
//
// The exact side is computed on the materialized induced subgraph via
// graph.Induce + exhaustive enumeration — independently of the mask-based
// sampling path, so the test also pins the mask ≡ induced-subgraph
// equivalence.
func TestCorollary34ResidualSandwich(t *testing.T) {
	g := gen.Figure1Graph()
	active := bitset.New(int(g.N()))
	active.Set(0) // v1 observed active: the paper's Figure 1 round-2 state
	inactive := []int32{1, 2, 3, 4, 5}

	sub, mapping, err := g.Induce(inactive)
	if err != nil {
		t.Fatal(err)
	}
	ni := int64(len(inactive))
	for _, etai := range []int64{2, 3, 4} {
		// Exact E[Γ(v | S)] per residual node, on the induced graph.
		exact := map[int32]float64{}
		for newID, oldID := range mapping {
			val, err := estimator.ExactTruncatedIC(sub, []int32{int32(newID)}, etai)
			if err != nil {
				t.Fatal(err)
			}
			exact[oldID] = val
		}
		// Sampled mRR hit rates over the residual graph of the ORIGINAL.
		const draws = 200000
		r := rng.New(uint64(etai) * 97)
		s := NewSampler(g, diffusion.IC)
		hits := map[int32]int{}
		for i := 0; i < draws; i++ {
			k := RootSize(ni, etai, r)
			set := s.MRR(k, inactive, active, r, nil)
			for _, v := range set {
				hits[v]++
			}
		}
		lo := 1 - 1/2.718281828459045
		for _, v := range inactive {
			est := float64(etai) * float64(hits[v]) / draws
			ex := exact[v]
			slack := 0.03 * maxf(1, ex)
			if est > ex+slack {
				t.Errorf("η_i=%d v=%d: estimate %v exceeds exact %v", etai, v, est, ex)
			}
			if est < lo*ex-slack {
				t.Errorf("η_i=%d v=%d: estimate %v below (1−1/e)·%v", etai, v, est, ex)
			}
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// TestCorollary34MultiRoundTrace extends the residual-sandwich test to a
// multi-round adaptive trace with a pool maintained by prune-and-top-up:
// after each observation the carried pool is pruned against the
// activation delta, refreshed and topped up, and the resulting estimator
// η_i·Pr[v ∈ R] must still sandwich the exact truncated marginal spread
// within [(1−1/e)·E[Γ], E[Γ]] on every round — the cross-validation that
// reused samples remain faithful to the residual distribution. A fully
// regenerated pool is checked against the reused one set-for-set, so the
// sandwich holding for one certifies both.
func TestCorollary34MultiRoundTrace(t *testing.T) {
	g := gen.Figure1Graph()
	eta := int64(3)
	const draws = 100000
	const seed = 0x34C0
	strat := MultiRoot(RoundRandomized)

	e := NewEngine(g, diffusion.IC, 4)
	defer e.Close()
	eFresh := NewEngine(g, diffusion.IC, 4)
	defer eFresh.Close()
	pool := NewCollection(g)
	fresh := NewCollection(g)

	active := bitset.New(int(g.N()))
	inactive := make([]int32, g.N())
	for i := range inactive {
		inactive[i] = int32(i)
	}
	// The trace: round 1 on the full graph, then v1 (id 0) observed
	// active (the paper's Figure 1 round-2 state), then v3 (id 2) too.
	observations := [][]int32{nil, {0}, {2}}

	for round, delta := range observations {
		for _, v := range delta {
			active.Set(v)
		}
		out := inactive[:0]
		for _, v := range inactive {
			if !active.Get(v) {
				out = append(out, v)
			}
		}
		inactive = out
		ni := int64(len(inactive))
		etai := eta - (int64(g.N()) - ni)
		if etai < 1 {
			t.Fatalf("round %d: trace exhausted eta", round+1)
		}

		if round == 0 {
			e.Generate(pool, Request{Strategy: strat, Inactive: inactive, Active: active,
				EtaI: etai, Seed: seed, Count: draws})
		} else {
			advancePool(e, pool, strat, seed, inactive, active, etai, delta, draws)
		}
		freshPool(eFresh, fresh, strat, seed, inactive, active, etai, draws)
		compareCollections(t, fmt.Sprintf("trace round %d", round+1), pool, fresh, g)

		// Exact truncated marginal spreads on the materialized residual.
		sub, mapping, err := g.Induce(inactive)
		if err != nil {
			t.Fatal(err)
		}
		lo := 1 - 1/2.718281828459045
		for newID, oldID := range mapping {
			exact, err := estimator.ExactTruncatedIC(sub, []int32{int32(newID)}, etai)
			if err != nil {
				t.Fatal(err)
			}
			est := float64(etai) * float64(pool.Coverage(oldID)) / draws
			slack := 0.04 * maxf(1, exact)
			if est > exact+slack {
				t.Errorf("round %d v=%d: estimate %v exceeds exact %v", round+1, oldID, est, exact)
			}
			if est < lo*exact-slack {
				t.Errorf("round %d v=%d: estimate %v below (1−1/e)·%v", round+1, oldID, est, exact)
			}
		}
	}
}
