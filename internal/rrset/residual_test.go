package rrset

import (
	"testing"

	"asti/internal/bitset"
	"asti/internal/diffusion"
	"asti/internal/estimator"
	"asti/internal/gen"
	"asti/internal/rng"
)

// TestCorollary34ResidualSandwich validates Corollary 3.4: on a residual
// graph G_i (original graph with some nodes activated/masked), the
// sampled mRR estimator η_i·Pr[v ∈ R] must sandwich the exact expected
// truncated marginal spread within [(1−1/e)·E[Γ], E[Γ]].
//
// The exact side is computed on the materialized induced subgraph via
// graph.Induce + exhaustive enumeration — independently of the mask-based
// sampling path, so the test also pins the mask ≡ induced-subgraph
// equivalence.
func TestCorollary34ResidualSandwich(t *testing.T) {
	g := gen.Figure1Graph()
	active := bitset.New(int(g.N()))
	active.Set(0) // v1 observed active: the paper's Figure 1 round-2 state
	inactive := []int32{1, 2, 3, 4, 5}

	sub, mapping, err := g.Induce(inactive)
	if err != nil {
		t.Fatal(err)
	}
	ni := int64(len(inactive))
	for _, etai := range []int64{2, 3, 4} {
		// Exact E[Γ(v | S)] per residual node, on the induced graph.
		exact := map[int32]float64{}
		for newID, oldID := range mapping {
			val, err := estimator.ExactTruncatedIC(sub, []int32{int32(newID)}, etai)
			if err != nil {
				t.Fatal(err)
			}
			exact[oldID] = val
		}
		// Sampled mRR hit rates over the residual graph of the ORIGINAL.
		const draws = 200000
		r := rng.New(uint64(etai) * 97)
		s := NewSampler(g, diffusion.IC)
		hits := map[int32]int{}
		for i := 0; i < draws; i++ {
			k := RootSize(ni, etai, r)
			set := s.MRR(k, inactive, active, r, nil)
			for _, v := range set {
				hits[v]++
			}
		}
		lo := 1 - 1/2.718281828459045
		for _, v := range inactive {
			est := float64(etai) * float64(hits[v]) / draws
			ex := exact[v]
			slack := 0.03 * maxf(1, ex)
			if est > ex+slack {
				t.Errorf("η_i=%d v=%d: estimate %v exceeds exact %v", etai, v, est, ex)
			}
			if est < lo*ex-slack {
				t.Errorf("η_i=%d v=%d: estimate %v below (1−1/e)·%v", etai, v, est, ex)
			}
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
