package rrset

import (
	"sync"
	"testing"

	"asti/internal/diffusion"
	"asti/internal/gen"
	"asti/internal/rng"
)

// collect generates count sets with the given worker count and returns the
// resulting collection.
func collect(t testing.TB, workers, count int, strat RootStrategy, countsOnly bool) (*Collection, GenStats) {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		Name: "engine-test", N: 3000, AvgDeg: 4, UniformMix: 0.4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]int32, g.N())
	for i := range nodes {
		nodes[i] = int32(i)
	}
	e := NewEngine(g, diffusion.IC, workers)
	defer e.Close()
	coll := NewCollection(g)
	stats := e.Generate(coll, Request{
		Strategy: strat, Inactive: nodes, EtaI: 100,
		Count: count, Seed: 0xDEC0DE, CountsOnly: countsOnly,
	})
	return coll, stats
}

// TestEngineDeterministicAcrossWorkers is the engine's core contract:
// byte-identical output for every worker count, including the sequential
// path.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	for _, strat := range []RootStrategy{SingleRoot(), MultiRoot(RoundRandomized), MultiRoot(RoundFloor), MultiRoot(RoundCeil)} {
		ref, refStats := collect(t, 1, 600, strat, false)
		for _, workers := range []int{2, 4, 8} {
			got, gotStats := collect(t, workers, 600, strat, false)
			if got.Size() != ref.Size() {
				t.Fatalf("workers=%d: %d sets vs %d", workers, got.Size(), ref.Size())
			}
			if gotStats.SetNodes != refStats.SetNodes || gotStats.EdgesExamined != refStats.EdgesExamined {
				t.Fatalf("workers=%d: stats %+v vs %+v", workers, gotStats, refStats)
			}
			for id := int32(0); id < int32(ref.Size()); id++ {
				a, b := ref.Set(id), got.Set(id)
				if len(a) != len(b) {
					t.Fatalf("workers=%d set %d: len %d vs %d", workers, id, len(b), len(a))
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("workers=%d set %d differs at %d: %d vs %d", workers, id, j, b[j], a[j])
					}
				}
			}
		}
	}
}

// TestEngineCountsOnlyMatchesStored verifies the counts-only fast path
// produces exactly the coverage counts of the storing path.
func TestEngineCountsOnlyMatchesStored(t *testing.T) {
	stored, _ := collect(t, 4, 400, MultiRoot(RoundRandomized), false)
	counts, _ := collect(t, 4, 400, MultiRoot(RoundRandomized), true)
	if stored.Size() != counts.Size() || stored.TotalNodes() != counts.TotalNodes() {
		t.Fatalf("size/nodes mismatch: %d/%d vs %d/%d",
			stored.Size(), stored.TotalNodes(), counts.Size(), counts.TotalNodes())
	}
	for v := int32(0); v < 3000; v++ {
		if stored.Coverage(v) != counts.Coverage(v) {
			t.Fatalf("coverage of %d: %d stored vs %d counts-only", v, stored.Coverage(v), counts.Coverage(v))
		}
	}
}

// TestEngineSmallBatchInline checks batches below the parallel threshold
// still produce the same stream (the dispatch decision must not change
// output).
func TestEngineSmallBatchInline(t *testing.T) {
	// 100 < minParallelSets forces inline even with many workers; generate
	// the same 100 sets in one big call prefix to compare.
	small, _ := collect(t, 8, 100, MultiRoot(RoundRandomized), false)
	big, _ := collect(t, 8, 600, MultiRoot(RoundRandomized), false)
	for id := int32(0); id < int32(small.Size()); id++ {
		a, b := small.Set(id), big.Set(id)
		if len(a) != len(b) {
			t.Fatalf("set %d: inline len %d vs pooled %d", id, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("set %d differs at %d", id, j)
			}
		}
	}
}

// TestEngineReuseAcrossGenerates exercises repeated Generate calls into a
// reused (Reset) collection — the adaptive-round pattern — under the race
// detector.
func TestEngineReuseAcrossGenerates(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Name: "reuse", N: 2000, AvgDeg: 4, UniformMix: 0.4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]int32, g.N())
	for i := range nodes {
		nodes[i] = int32(i)
	}
	e := NewEngine(g, diffusion.IC, 4)
	defer e.Close()
	coll := NewCollection(g)
	r := rng.New(77)
	for round := 0; round < 5; round++ {
		coll.Reset()
		for _, batch := range []int{300, 600, 1200} {
			e.Generate(coll, Request{
				Strategy: MultiRoot(RoundRandomized), Inactive: nodes, EtaI: 50,
				Count: batch - coll.Size(), Seed: r.Uint64(),
			})
			if coll.Size() != batch {
				t.Fatalf("round %d: size %d want %d", round, coll.Size(), batch)
			}
			if _, cov := coll.ArgmaxCoverage(nil); cov <= 0 {
				t.Fatalf("round %d: no coverage", round)
			}
			seeds, covered := coll.GreedyMaxCoverage(4, nil)
			if len(seeds) == 0 || covered <= 0 {
				t.Fatalf("round %d: empty greedy", round)
			}
			if got := coll.CoverageOf(seeds); got != covered {
				t.Fatalf("round %d: CoverageOf(greedy)=%d want %d", round, got, covered)
			}
		}
	}
}

// TestEngineConcurrentEngines runs several engines in parallel to surface
// cross-engine data races (each engine owns its pool and scratch).
func TestEngineConcurrentEngines(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Name: "conc", N: 1500, AvgDeg: 4, UniformMix: 0.4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]int32, g.N())
	for i := range nodes {
		nodes[i] = int32(i)
	}
	var wg sync.WaitGroup
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			e := NewEngine(g, diffusion.IC, 3)
			defer e.Close()
			coll := NewCollection(g)
			e.Generate(coll, Request{
				Strategy: MultiRoot(RoundRandomized), Inactive: nodes, EtaI: 30,
				Count: 500, Seed: uint64(k),
			})
			if coll.Size() != 500 {
				t.Errorf("engine %d: %d sets", k, coll.Size())
			}
		}(k)
	}
	wg.Wait()
}

// TestCollectionResetMatchesFresh verifies a Reset collection behaves like
// a newly constructed one.
func TestCollectionResetMatchesFresh(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Name: "reset", N: 500, AvgDeg: 3, UniformMix: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]int32, g.N())
	for i := range nodes {
		nodes[i] = int32(i)
	}
	e := NewEngine(g, diffusion.IC, 1)
	defer e.Close()

	reused := NewCollection(g)
	e.Generate(reused, Request{Strategy: SingleRoot(), Inactive: nodes, Count: 50, Seed: 1})
	// Query before reset so scratch/index state is warm.
	reused.GreedyMaxCoverage(3, nil)
	reused.CoverageOf(nodes[:10])
	reused.Reset()
	if reused.Size() != 0 || reused.TotalNodes() != 0 {
		t.Fatalf("reset left size=%d nodes=%d", reused.Size(), reused.TotalNodes())
	}
	for _, v := range nodes {
		if reused.Coverage(v) != 0 {
			t.Fatalf("reset left coverage on %d", v)
		}
		if len(reused.IndexOf(v)) != 0 {
			t.Fatalf("reset left index entries on %d", v)
		}
	}
	e.Generate(reused, Request{Strategy: SingleRoot(), Inactive: nodes, Count: 80, Seed: 2})

	fresh := NewCollection(g)
	e2 := NewEngine(g, diffusion.IC, 1)
	defer e2.Close()
	e2.Generate(fresh, Request{Strategy: SingleRoot(), Inactive: nodes, Count: 80, Seed: 2})

	for v := int32(0); v < g.N(); v++ {
		if reused.Coverage(v) != fresh.Coverage(v) {
			t.Fatalf("coverage of %d: reused %d vs fresh %d", v, reused.Coverage(v), fresh.Coverage(v))
		}
	}
	s1, c1 := reused.GreedyMaxCoverage(5, nil)
	s2, c2 := fresh.GreedyMaxCoverage(5, nil)
	if c1 != c2 || len(s1) != len(s2) {
		t.Fatalf("greedy differs: %v/%d vs %v/%d", s1, c1, s2, c2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("greedy seed %d differs", i)
		}
	}
}

// TestCoverageOfMatchesNaive cross-checks the epoch-marked CoverageOf
// against a straightforward map-based count.
func TestCoverageOfMatchesNaive(t *testing.T) {
	coll, _ := collect(t, 2, 300, MultiRoot(RoundRandomized), false)
	S := []int32{1, 5, 9, 120, 700, 1500, 2999}
	naive := map[int32]struct{}{}
	for id := int32(0); id < int32(coll.Size()); id++ {
		for _, v := range coll.Set(id) {
			for _, s := range S {
				if v == s {
					naive[id] = struct{}{}
				}
			}
		}
	}
	if got := coll.CoverageOf(S); got != int64(len(naive)) {
		t.Fatalf("CoverageOf=%d want %d", got, len(naive))
	}
	// Repeated calls must agree (epoch bumping, no stale marks).
	for i := 0; i < 3; i++ {
		if got := coll.CoverageOf(S); got != int64(len(naive)) {
			t.Fatalf("repeat %d: CoverageOf=%d want %d", i, got, len(naive))
		}
	}
}

// BenchmarkCoverageOf measures the reusable-scratch CoverageOf on a
// realistic pool (the hot validation query of OPIM-C); it allocates
// nothing after warm-up.
func BenchmarkCoverageOf(b *testing.B) {
	coll, _ := collect(b, 0, 5000, MultiRoot(RoundRandomized), false)
	S := make([]int32, 50)
	for i := range S {
		S[i] = int32(i * 37 % 3000)
	}
	coll.CoverageOf(S) // warm the index and marks
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coll.CoverageOf(S)
	}
}

// BenchmarkEngineGenerate measures engine throughput at the configured
// GOMAXPROCS worker count.
func BenchmarkEngineGenerate(b *testing.B) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Name: "bench", N: 20000, AvgDeg: 3, UniformMix: 0.4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	nodes := make([]int32, g.N())
	for i := range nodes {
		nodes[i] = int32(i)
	}
	e := NewEngine(g, diffusion.IC, 0)
	defer e.Close()
	coll := NewCollection(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coll.Reset()
		e.Generate(coll, Request{
			Strategy: MultiRoot(RoundRandomized), Inactive: nodes, EtaI: 1000,
			Count: 2048, Seed: uint64(i), CountsOnly: true,
		})
	}
}
