package rrset

import (
	"fmt"
	"testing"

	"asti/internal/bitset"
	"asti/internal/diffusion"
	"asti/internal/gen"
	"asti/internal/graph"
	"asti/internal/rng"
)

// pruneStale mirrors trim's staleness rule for multi-root pools: a stored
// set survives a residual update only if its replayed root count is
// unchanged and strictly below n_i.
func pruneStale(strat RootStrategy, seed uint64, ni, etai int64) func(id, rootK int32) bool {
	return func(id, rootK int32) bool {
		if !strat.Multi() {
			return false
		}
		if rootK == 0 {
			return true
		}
		k := strat.RootSizeAt(seed, int64(id), ni, etai)
		return int64(k) >= ni || k != int(rootK)
	}
}

// advancePool brings an incrementally maintained pool to the new residual
// state: truncate to the target, prune + refresh stale sets, top up.
func advancePool(e *Engine, coll *Collection, strat RootStrategy, seed uint64,
	inactive []int32, active *bitset.Set, etai int64, delta []int32, target int) {
	if coll.Stored() > target {
		coll.Truncate(target)
	}
	req := Request{Strategy: strat, Inactive: inactive, Active: active, EtaI: etai, Seed: seed}
	stale := coll.Prune(delta, pruneStale(strat, seed, int64(len(inactive)), etai))
	e.Refresh(coll, req, stale)
	req.Count = target - coll.Stored()
	req.FirstIndex = int64(coll.Stored())
	e.Generate(coll, req)
}

// freshPool regenerates the whole pool for the residual state from
// scratch under the same position-stable seeds.
func freshPool(e *Engine, coll *Collection, strat RootStrategy, seed uint64,
	inactive []int32, active *bitset.Set, etai int64, target int) {
	coll.Reset()
	e.Generate(coll, Request{Strategy: strat, Inactive: inactive, Active: active,
		EtaI: etai, Seed: seed, Count: target})
}

// compareCollections asserts two pools are byte-identical (same sets in
// the same positions with the same root counts) and agree on coverage.
func compareCollections(t *testing.T, tag string, a, b *Collection, g *graph.Graph) {
	t.Helper()
	if a.Stored() != b.Stored() {
		t.Fatalf("%s: %d sets vs %d", tag, a.Stored(), b.Stored())
	}
	for id := int32(0); id < int32(a.Stored()); id++ {
		sa, sb := a.Set(id), b.Set(id)
		if len(sa) != len(sb) {
			t.Fatalf("%s set %d: len %d vs %d", tag, id, len(sa), len(sb))
		}
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("%s set %d differs at %d: %d vs %d", tag, id, j, sa[j], sb[j])
			}
		}
		if a.RootK(id) != b.RootK(id) {
			t.Fatalf("%s set %d: rootK %d vs %d", tag, id, a.RootK(id), b.RootK(id))
		}
	}
	for v := int32(0); v < g.N(); v++ {
		if a.Coverage(v) != b.Coverage(v) {
			t.Fatalf("%s: coverage of %d: %d vs %d", tag, v, a.Coverage(v), b.Coverage(v))
		}
	}
}

// TestPruneRefreshMatchesFresh is the heart of cross-round pool reuse:
// across a multi-round residual trace, the incrementally maintained pool
// (Prune → Refresh → top-up/truncate) must be byte-identical to a pool
// fully regenerated from the position-stable seeds — for single- and
// multi-root strategies, IC and LT, and any worker count.
func TestPruneRefreshMatchesFresh(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		Name: "prune-eq", N: 1500, AvgDeg: 4, UniformMix: 0.4, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	const seed = 0xF00D
	targets := []int{1200, 1200, 1500, 900, 1300}
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		for _, strat := range []RootStrategy{SingleRoot(), MultiRoot(RoundRandomized), MultiRoot(RoundFloor)} {
			for _, workers := range []int{1, 4} {
				eInc := NewEngine(g, model, workers)
				eFresh := NewEngine(g, model, workers)
				inc := NewCollection(g)
				fresh := NewCollection(g)

				active := bitset.New(int(g.N()))
				inactive := make([]int32, g.N())
				for i := range inactive {
					inactive[i] = int32(i)
				}
				eta := int64(400)
				pick := rng.New(7)
				var delta []int32

				for round, target := range targets {
					ni := int64(len(inactive))
					etai := eta - (int64(g.N()) - ni)
					if round == 0 {
						inc.Reset()
						eInc.Generate(inc, Request{Strategy: strat, Inactive: inactive,
							Active: active, EtaI: etai, Seed: seed, Count: target})
					} else {
						advancePool(eInc, inc, strat, seed, inactive, active, etai, delta, target)
					}
					freshPool(eFresh, fresh, strat, seed, inactive, active, etai, target)
					tag := fmt.Sprintf("%v/%v/w%d/round%d", model, strat, workers, round)
					compareCollections(t, tag, inc, fresh, g)

					// Observe: activate a handful of residual nodes.
					delta = nil
					for len(delta) < 12 {
						v := inactive[pick.Intn(len(inactive))]
						if !active.Get(v) {
							active.Set(v)
							delta = append(delta, v)
						}
					}
					out := inactive[:0]
					for _, v := range inactive {
						if !active.Get(v) {
							out = append(out, v)
						}
					}
					inactive = out
				}
				eInc.Close()
				eFresh.Close()
			}
		}
	}
}

// TestPruneFlagsExactlyDeltaAndCallback pins Prune's contract on a
// hand-built pool: precisely the sets containing a delta member or
// flagged by the callback are returned, ascending.
func TestPruneFlagsExactlyDeltaAndCallback(t *testing.T) {
	g := gen.Line(8, 1.0)
	c := NewCollection(g)
	c.AddRooted([]int32{0, 1}, 1)    // 0: hit via 1
	c.AddRooted([]int32{2, 3}, 1)    // 1: clean
	c.AddRooted([]int32{4, 1, 5}, 2) // 2: hit via 1
	c.AddRooted([]int32{6}, 1)       // 3: clean, flagged by callback
	c.AddRooted([]int32{7}, 0)       // 4: clean

	stale := c.Prune([]int32{1}, func(id, rootK int32) bool { return id == 3 })
	want := []int32{0, 2, 3}
	if len(stale) != len(want) {
		t.Fatalf("stale %v, want %v", stale, want)
	}
	for i := range want {
		if stale[i] != want[i] {
			t.Fatalf("stale %v, want %v", stale, want)
		}
	}
	if got := c.Prune(nil, nil); got != nil {
		t.Fatalf("empty delta pruned %v", got)
	}
}

// TestReplaceTruncateInvariants cross-checks coverage counters, sizes and
// greedy coverage against a naive recomputation through a randomized
// Replace/Truncate/Add workload (including hole compaction).
func TestReplaceTruncateInvariants(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Name: "inv", N: 200, AvgDeg: 3, UniformMix: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollection(g)
	r := rng.New(11)
	var mirror [][]int32

	randomSet := func() []int32 {
		l := 1 + r.Intn(6)
		seen := map[int32]bool{}
		var s []int32
		for len(s) < l {
			v := int32(r.Intn(int(g.N())))
			if !seen[v] {
				seen[v] = true
				s = append(s, v)
			}
		}
		return s
	}
	check := func(step int) {
		t.Helper()
		cov := make([]int64, g.N())
		var nodes int64
		for _, s := range mirror {
			nodes += int64(len(s))
			for _, v := range s {
				cov[v]++
			}
		}
		if c.Size() != len(mirror) || c.TotalNodes() != nodes {
			t.Fatalf("step %d: size/nodes %d/%d want %d/%d", step, c.Size(), c.TotalNodes(), len(mirror), nodes)
		}
		for v := int32(0); v < g.N(); v++ {
			if c.Coverage(v) != cov[v] {
				t.Fatalf("step %d: coverage of %d is %d want %d", step, v, c.Coverage(v), cov[v])
			}
		}
		for id := range mirror {
			got := c.Set(int32(id))
			if len(got) != len(mirror[id]) {
				t.Fatalf("step %d: set %d length %d want %d", step, id, len(got), len(mirror[id]))
			}
			for j := range got {
				if got[j] != mirror[id][j] {
					t.Fatalf("step %d: set %d differs at %d", step, id, j)
				}
			}
		}
	}

	for i := 0; i < 40; i++ {
		c.AddRooted(randomSet(), 1)
		mirror = append(mirror, append([]int32(nil), c.Set(int32(len(mirror)))...))
	}
	check(0)
	for step := 1; step <= 300; step++ {
		switch op := r.Intn(10); {
		case op < 6 && len(mirror) > 0: // replace
			id := r.Intn(len(mirror))
			s := randomSet()
			c.Replace(int32(id), s, 1)
			mirror[id] = append([]int32(nil), s...)
		case op < 8: // add
			s := randomSet()
			c.AddRooted(s, 1)
			mirror = append(mirror, append([]int32(nil), s...))
		default: // truncate
			if len(mirror) > 5 {
				m := len(mirror) - 1 - r.Intn(4)
				c.Truncate(m)
				mirror = mirror[:m]
			}
		}
		if step%37 == 0 {
			check(step)
		}
	}
	check(301)

	// Greedy coverage against exhaustive recomputation on the final pool.
	seeds, covered := c.GreedyMaxCoverage(3, nil)
	if got := c.CoverageOf(seeds); got != covered {
		t.Fatalf("greedy covered %d but CoverageOf says %d", covered, got)
	}
}

// TestArgmaxAndGreedyTieBreakUnderReuse pins the smallest-id tie-break of
// both selection primitives, including after Replace mutated the pool —
// the determinism the reuse equivalence contract leans on.
func TestArgmaxAndGreedyTieBreakUnderReuse(t *testing.T) {
	g := gen.Line(10, 1.0)
	c := NewCollection(g)
	// Nodes 3 and 7 both covered twice; smaller id must win.
	c.AddRooted([]int32{7, 3}, 1)
	c.AddRooted([]int32{3}, 1)
	c.AddRooted([]int32{7}, 1)
	if v, cov := c.ArgmaxCoverage(nil); v != 3 || cov != 2 {
		t.Fatalf("argmax (%d,%d), want (3,2)", v, cov)
	}
	if v, _ := c.ArgmaxCoverage([]int32{3, 5, 7}); v != 3 {
		t.Fatalf("argmax over candidates picked %d, want 3", v)
	}
	seeds, _ := c.GreedyMaxCoverage(1, nil)
	if len(seeds) != 1 || seeds[0] != 3 {
		t.Fatalf("greedy picked %v, want [3]", seeds)
	}
	// Replace set 1 so 7 now ties 3 on a different support; still 3.
	c.Replace(1, []int32{3, 9}, 1)
	if v, _ := c.ArgmaxCoverage(nil); v != 3 {
		t.Fatalf("argmax after replace picked %d, want 3", v)
	}
	seeds, _ = c.GreedyMaxCoverage(2, nil)
	if seeds[0] != 3 {
		t.Fatalf("greedy after replace picked %v first, want 3", seeds)
	}
	// Shift the balance: drop the last set; 7 loses a count, 3 wins alone.
	c.Truncate(2)
	if v, cov := c.ArgmaxCoverage(nil); v != 3 || cov != 2 {
		t.Fatalf("argmax after truncate (%d,%d), want (3,2)", v, cov)
	}
}

// TestGreedyLazyMatchesLinearScan compares the CELF-style lazy greedy
// against the straightforward linear-scan greedy on random pools.
func TestGreedyLazyMatchesLinearScan(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Name: "lazy", N: 300, AvgDeg: 4, UniformMix: 0.4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g, diffusion.IC, 1)
	defer e.Close()
	nodes := make([]int32, g.N())
	for i := range nodes {
		nodes[i] = int32(i)
	}
	c := NewCollection(g)
	e.Generate(c, Request{Strategy: MultiRoot(RoundRandomized), Inactive: nodes, EtaI: 40, Count: 500, Seed: 5})

	// Reference: naive greedy with explicit marginal recount per pick.
	covered := map[int32]bool{}
	var refSeeds []int32
	var refCovered int64
	for pick := 0; pick < 6; pick++ {
		best, bestGain := int32(-1), int64(0)
		for v := int32(0); v < g.N(); v++ {
			var gain int64
			for _, id := range c.IndexOf(v) {
				if !covered[id] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = v, gain
			}
		}
		if best < 0 || bestGain == 0 {
			break
		}
		refSeeds = append(refSeeds, best)
		refCovered += bestGain
		for _, id := range c.IndexOf(best) {
			covered[id] = true
		}
	}

	seeds, cov := c.GreedyMaxCoverage(6, nil)
	if cov != refCovered || len(seeds) != len(refSeeds) {
		t.Fatalf("lazy greedy (%v, %d) vs naive (%v, %d)", seeds, cov, refSeeds, refCovered)
	}
	for i := range seeds {
		if seeds[i] != refSeeds[i] {
			t.Fatalf("lazy greedy pick %d is %d, naive picked %d", i, seeds[i], refSeeds[i])
		}
	}
}

// BenchmarkPrune measures the steady-state cost of a reuse round at the
// collection/engine level: scan the pool against a small activation
// delta, refresh the invalidated sets, top back up.
func BenchmarkPrune(b *testing.B) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Name: "prunebench", N: 20000, AvgDeg: 3, UniformMix: 0.4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	e := NewEngine(g, diffusion.IC, 0)
	defer e.Close()
	coll := NewCollection(g)
	active := bitset.New(int(g.N()))
	inactive := make([]int32, g.N())
	for i := range inactive {
		inactive[i] = int32(i)
	}
	const seed = 0xBE7C
	const target = 4096
	strat := MultiRoot(RoundFloor) // root count stable under small deltas
	etai := int64(1000)
	e.Generate(coll, Request{Strategy: strat, Inactive: inactive, Active: active,
		EtaI: etai, Seed: seed, Count: target})
	pick := rng.New(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Long runs would drain the residual and drift the workload; park
		// the timer and restart the campaign state when it runs low.
		if len(inactive) < int(g.N())/2 {
			b.StopTimer()
			active = bitset.New(int(g.N()))
			inactive = inactive[:0]
			for v := int32(0); v < g.N(); v++ {
				inactive = append(inactive, v)
			}
			coll.Reset()
			e.Generate(coll, Request{Strategy: strat, Inactive: inactive, Active: active,
				EtaI: etai, Seed: seed, Count: target})
			b.StartTimer()
		}
		// One observation: four residual nodes activate.
		var delta []int32
		for len(delta) < 4 {
			v := inactive[pick.Intn(len(inactive))]
			if !active.Get(v) {
				active.Set(v)
				delta = append(delta, v)
			}
		}
		out := inactive[:0]
		for _, v := range inactive {
			if !active.Get(v) {
				out = append(out, v)
			}
		}
		inactive = out
		stale := coll.Prune(delta, pruneStale(strat, seed, int64(len(inactive)), etai))
		e.Refresh(coll, Request{Strategy: strat, Inactive: inactive, Active: active,
			EtaI: etai, Seed: seed}, stale)
	}
}
