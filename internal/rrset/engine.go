package rrset

import (
	"runtime"
	"sync/atomic"

	"asti/internal/bitset"
	"asti/internal/diffusion"
	"asti/internal/graph"
	"asti/internal/rng"
)

// Rounding selects how a multi-root strategy derives the root-set size k
// from n_i/η_i. The paper's randomized rounding (§3.3) is the default; the
// fixed variants exist for the ablation that motivates it (Remark after
// Corollary 3.4).
type Rounding int

const (
	// RoundRandomized draws k = ⌊n_i/η_i⌋+1 with probability equal to the
	// fractional part, else ⌊n_i/η_i⌋ (E[k] = n_i/η_i exactly).
	RoundRandomized Rounding = iota
	// RoundFloor always uses k = ⌊n_i/η_i⌋.
	RoundFloor
	// RoundCeil always uses k = ⌊n_i/η_i⌋ + 1.
	RoundCeil
)

// RootStrategy selects how each sampled set draws its roots: a classic
// single-root RR-set, or the paper's multi-root mRR-set with one of the
// three root-size rounding modes.
type RootStrategy struct {
	multi    bool
	rounding Rounding
}

// SingleRoot is the classic RR-set strategy (one uniform root).
func SingleRoot() RootStrategy { return RootStrategy{} }

// MultiRoot is the paper's mRR strategy with the given rounding of
// n_i/η_i.
func MultiRoot(r Rounding) RootStrategy { return RootStrategy{multi: true, rounding: r} }

// Multi reports whether the strategy samples multi-root sets.
func (s RootStrategy) Multi() bool { return s.multi }

// rootSize applies the strategy's rounding of ni/etai (multi-root only).
func (s RootStrategy) rootSize(ni, etai int64, r *rng.Source) int {
	switch s.rounding {
	case RoundFloor:
		k := ni / etai
		if k < 1 {
			k = 1
		}
		return int(k)
	case RoundCeil:
		k := ni/etai + 1
		if k > ni {
			k = ni
		}
		return int(k)
	default:
		return RootSize(ni, etai, r)
	}
}

// Request describes one generation batch: how many sets to add, drawn with
// which root strategy over which residual view, under which batch seed.
type Request struct {
	// Strategy picks single-root RR vs multi-root mRR sampling.
	Strategy RootStrategy
	// Inactive lists the residual nodes (the exact complement of Active).
	// Roots are rejection-sampled from [0, n) against the Active mask; the
	// list itself is consulted for n_i and for the k == n_i fast path.
	Inactive []int32
	// Active masks removed nodes (nil = none). It is read concurrently by
	// the workers and must not be mutated during Generate.
	Active *bitset.Set
	// EtaI is the remaining shortfall η_i; used only by multi-root
	// strategies to size the root set.
	EtaI int64
	// Count is the number of sets to generate.
	Count int
	// Seed is the batch seed: set i of the batch derives its private
	// generator as SplitMix64(Seed+FirstIndex+i), making the output
	// byte-identical for every worker count (including 1).
	Seed uint64
	// FirstIndex offsets the per-set seed derivation, giving every pool
	// position a stable seed across calls: generating positions [0,1000)
	// in one call equals generating [0,500) then [500,1000) with
	// FirstIndex 500. Cross-round pool reuse leans on this — a position's
	// seed never changes, so an untouched stored set IS what regeneration
	// would produce.
	FirstIndex int64
	// CountsOnly updates only the coverage counts Λ_R(v) in the target
	// Collection without storing the sets.
	CountsOnly bool
}

// RootSizeAt replays the root-size draw that generateOne performs for the
// pool position idx under batch seed: it is the first consumption of the
// per-set stream, so replaying it is exact. Prune uses it to detect sets
// whose root count would differ under the round's new n_i/η_i.
func (s RootStrategy) RootSizeAt(seed uint64, idx int64, ni, etai int64) int {
	if !s.multi {
		return 1
	}
	var src rng.Source
	src.Seed(rng.SplitMix64(seed + uint64(idx)))
	return s.rootSize(ni, etai, &src)
}

// GenStats reports instrumentation for one Generate call.
type GenStats struct {
	// Sets is the number of sets generated (== Request.Count).
	Sets int64
	// SetNodes is Σ|R| over the generated sets.
	SetNodes int64
	// EdgesExamined counts in-edges inspected during the reverse BFSes (the
	// cost model behind Lemma 3.8).
	EdgesExamined int64
	// RngDraws counts stream values the reverse-BFS kernel consumed (edge
	// coins and geometric jumps; see Sampler.RngDraws).
	RngDraws int64
}

// minParallelSets is the batch size below which the worker pool is not
// worth the handoff overhead and Generate runs inline. Both paths use the
// same per-set seeding, so the dispatch decision never changes output.
const minParallelSets = 256

// minTaskGrain is the smallest number of sets handed to a pool worker at
// once.
const minTaskGrain = 64

// Engine is the shared concurrent mRR/RR sampling engine: one persistent
// worker pool with per-worker Sampler scratch that every consumer (TRIM,
// OPIM-C, IMM, ATEUC) drives through Generate. Set i of a batch seeds its
// private generator as SplitMix64(batchSeed+i), so the stream of generated
// sets is identical for any worker count — parallelism is purely a speed
// knob, never a semantics knob.
//
// An Engine is not safe for concurrent use: one goroutine calls Generate
// at a time (the workers underneath are the engine's own). Close releases
// the pool; engines dropped without Close are cleaned up by a finalizer.
type Engine struct {
	g       *graph.Graph
	model   diffusion.Model
	workers int
	ver     Version

	inline *workerState // scratch for the sequential path
	states []*workerState
	tasks  chan genTask
	closed bool
}

// workerState is one worker's private scratch: a Sampler plus reusable
// output arenas. It deliberately holds no Engine pointer so the pool
// goroutines never keep an abandoned Engine alive.
type workerState struct {
	sampler *Sampler
	out     []int32 // concatenated sets of the current batch
	lens    []int32 // per-set lengths of the current batch
	rootKs  []int32 // per-set root counts of the current batch
}

// genTask asks a pool worker for sets [lo, hi) of a batch. When ids is
// non-nil the task regenerates the stored sets ids[lo:hi] (Refresh);
// otherwise it generates fresh pool positions base+lo … base+hi-1.
type genTask struct {
	idx      int
	lo, hi   int
	seed     uint64
	base     int64
	ids      []int32
	strat    RootStrategy
	inactive []int32
	active   *bitset.Set
	etai     int64
	results  chan<- taskResult
	edges    *atomic.Int64
	draws    *atomic.Int64
}

// taskResult hands a task's arena segment back to Generate. The slices
// point into the worker's arena and stay valid until the next Generate
// call resets it.
type taskResult struct {
	idx    int
	data   []int32
	lens   []int32
	rootKs []int32
	ids    []int32 // refresh tasks: the stored-set ids regenerated, aligned with lens
}

// NewEngine returns an Engine for g under the given model, speaking the
// default sampler stream contract. workers <= 0 selects GOMAXPROCS;
// workers == 1 keeps everything on the calling goroutine. Output is
// identical for every setting.
func NewEngine(g *graph.Graph, model diffusion.Model, workers int) *Engine {
	return NewEngineVersion(g, model, workers, DefaultVersion)
}

// NewEngineVersion is NewEngine pinned to a sampler stream contract
// (0 resolves to DefaultVersion). Every worker speaks the same version,
// so the version — like the worker count — never leaks into which sets
// are generated, only into how the stream is consumed.
func NewEngineVersion(g *graph.Graph, model diffusion.Model, workers int, ver Version) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if ver == 0 {
		ver = DefaultVersion
	}
	return &Engine{
		g:       g,
		model:   model,
		workers: workers,
		ver:     ver,
		inline:  newWorkerState(g, model, ver),
	}
}

// newWorkerState builds one worker's scratch, pre-sizing the output
// arena from graph stats (mean set size tracks mean in-degree) so early
// batches do not regrow it from nil.
func newWorkerState(g *graph.Graph, model diffusion.Model, ver Version) *workerState {
	est := (4*int(g.M()/int64(g.N())) + 16) * minTaskGrain
	if est > 1<<20 {
		est = 1 << 20
	}
	return &workerState{
		sampler: NewSamplerVersion(g, model, ver),
		out:     make([]int32, 0, est),
		lens:    make([]int32, 0, minTaskGrain),
		rootKs:  make([]int32, 0, minTaskGrain),
	}
}

// Graph returns the graph the engine samples over.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Model returns the engine's diffusion model.
func (e *Engine) Model() diffusion.Model { return e.model }

// Workers returns the resolved worker count.
func (e *Engine) Workers() int { return e.workers }

// Version returns the engine's sampler stream contract.
func (e *Engine) Version() Version { return e.ver }

// Close shuts down the worker pool. Generate must not be called after
// Close. Close is idempotent but not safe to race with Generate.
func (e *Engine) Close() {
	if e.tasks != nil && !e.closed {
		close(e.tasks)
		runtime.SetFinalizer(e, nil)
	}
	e.closed = true
}

// start lazily spins up the persistent pool.
func (e *Engine) start() {
	if e.tasks != nil {
		return
	}
	e.tasks = make(chan genTask, e.workers*4)
	e.states = make([]*workerState, e.workers)
	for w := range e.states {
		ws := newWorkerState(e.g, e.model, e.ver)
		e.states[w] = ws
		go poolWorker(e.tasks, ws)
	}
	// Safety net for engines dropped without Close: release the goroutines
	// when the Engine becomes unreachable (the workers reference only the
	// channel and their own state, never the Engine).
	runtime.SetFinalizer(e, (*Engine).Close)
}

// poolWorker serves generation tasks until the task channel closes.
func poolWorker(tasks <-chan genTask, ws *workerState) {
	var src rng.Source
	for t := range tasks {
		dataStart, lensStart := len(ws.out), len(ws.lens)
		edges0, draws0 := ws.sampler.EdgesExamined, ws.sampler.RngDraws
		// One mask copy up front buys a single-bitset hot loop for the
		// whole task (see Sampler.PrimeActive); active is nil below.
		ws.sampler.PrimeActive(t.active)
		for i := t.lo; i < t.hi; i++ {
			gidx := t.base + int64(i)
			if t.ids != nil {
				gidx = int64(t.ids[i])
			}
			src.Seed(rng.SplitMix64(t.seed + uint64(gidx)))
			setStart := len(ws.out)
			var k int32
			ws.out, k = generateOne(ws.sampler, t.strat, t.inactive, nil, t.etai, &src, ws.out)
			ws.lens = append(ws.lens, int32(len(ws.out)-setStart))
			ws.rootKs = append(ws.rootKs, k)
		}
		t.edges.Add(ws.sampler.EdgesExamined - edges0)
		t.draws.Add(ws.sampler.RngDraws - draws0)
		var ids []int32
		if t.ids != nil {
			ids = t.ids[t.lo:t.hi]
		}
		t.results <- taskResult{idx: t.idx, data: ws.out[dataStart:], lens: ws.lens[lensStart:], rootKs: ws.rootKs[lensStart:], ids: ids}
	}
}

// generateOne samples one set under the strategy into dst, via the
// residual-stable sampler paths, returning the extended slice and the
// drawn root count.
func generateOne(s *Sampler, strat RootStrategy, inactive []int32, active *bitset.Set, etai int64, r *rng.Source, dst []int32) ([]int32, int32) {
	if strat.multi {
		k := strat.rootSize(int64(len(inactive)), etai, r)
		return s.MRRStable(k, inactive, active, r, dst), int32(k)
	}
	return s.RRStable(active, r, dst), 1
}

// Generate adds req.Count sets to coll and returns the batch's
// instrumentation. This is the single sampling loop of the codebase: every
// consumer's pool growth routes through here. The per-set seeding makes
// the added sets — and therefore every downstream selection — identical
// for any worker count.
func (e *Engine) Generate(coll *Collection, req Request) GenStats {
	need := req.Count
	if need <= 0 {
		return GenStats{}
	}
	stats := GenStats{Sets: int64(need)}
	if e.workers == 1 || need < minParallelSets {
		ws := e.inline
		edges0, draws0 := ws.sampler.EdgesExamined, ws.sampler.RngDraws
		ws.sampler.PrimeActive(req.Active)
		var src rng.Source
		for i := 0; i < need; i++ {
			src.Seed(rng.SplitMix64(req.Seed + uint64(req.FirstIndex+int64(i))))
			set, k := generateOne(ws.sampler, req.Strategy, req.Inactive, nil, req.EtaI, &src, ws.out[:0])
			ws.out = set // keep the grown buffer; Add copies
			if req.CountsOnly {
				coll.AddCountsOnly(set)
			} else {
				coll.AddRooted(set, k)
			}
			stats.SetNodes += int64(len(set))
		}
		stats.EdgesExamined = ws.sampler.EdgesExamined - edges0
		stats.RngDraws = ws.sampler.RngDraws - draws0
		return stats
	}

	ordered, edges, draws := e.fanOut(req, need, nil)
	// Commit in set-index order so the Collection's stored-set ids are
	// scheduling-independent.
	for _, tr := range ordered {
		var off int32
		for si, l := range tr.lens {
			set := tr.data[off : off+l]
			off += l
			if req.CountsOnly {
				coll.AddCountsOnly(set)
			} else {
				coll.AddRooted(set, tr.rootKs[si])
			}
			stats.SetNodes += int64(len(set))
		}
	}
	stats.EdgesExamined = edges
	stats.RngDraws = draws
	return stats
}

// Refresh regenerates the identified stored sets of coll in place, each
// from its position-stable seed SplitMix64(req.Seed + id) over the
// request's residual view. It is the regeneration half of cross-round pool
// reuse: Collection.Prune names the invalidated sets, Refresh re-derives
// them, and the pool ends byte-identical to full regeneration at a cost
// proportional to the activation delta. req.Count is ignored; ids must be
// ascending stored-set ids (as returned by Prune).
func (e *Engine) Refresh(coll *Collection, req Request, ids []int32) GenStats {
	need := len(ids)
	if need == 0 {
		return GenStats{}
	}
	stats := GenStats{Sets: int64(need)}
	if e.workers == 1 || need < minParallelSets {
		ws := e.inline
		edges0, draws0 := ws.sampler.EdgesExamined, ws.sampler.RngDraws
		ws.sampler.PrimeActive(req.Active)
		var src rng.Source
		for _, id := range ids {
			src.Seed(rng.SplitMix64(req.Seed + uint64(id)))
			set, k := generateOne(ws.sampler, req.Strategy, req.Inactive, nil, req.EtaI, &src, ws.out[:0])
			ws.out = set
			coll.Replace(id, set, k)
			stats.SetNodes += int64(len(set))
		}
		stats.EdgesExamined = ws.sampler.EdgesExamined - edges0
		stats.RngDraws = ws.sampler.RngDraws - draws0
		return stats
	}

	ordered, edges, draws := e.fanOut(req, need, ids)
	// Commit in id order: coverage math is order-independent, but a fixed
	// order keeps the data layout (and memory profile) reproducible.
	for _, tr := range ordered {
		var off int32
		for si, l := range tr.lens {
			set := tr.data[off : off+l]
			off += l
			coll.Replace(tr.ids[si], set, tr.rootKs[si])
			stats.SetNodes += int64(len(set))
		}
	}
	stats.EdgesExamined = edges
	stats.RngDraws = draws
	return stats
}

// fanOut distributes need set generations (fresh positions, or the given
// stored ids when non-nil) over the worker pool and returns the results in
// task order plus the examined-edge and stream-draw totals.
func (e *Engine) fanOut(req Request, need int, ids []int32) ([]taskResult, int64, int64) {
	e.start()
	// No tasks are in flight between calls, so the arenas the previous
	// batch handed out can be reclaimed here.
	for _, ws := range e.states {
		ws.out = ws.out[:0]
		ws.lens = ws.lens[:0]
		ws.rootKs = ws.rootKs[:0]
	}
	grain := (need + e.workers*4 - 1) / (e.workers * 4)
	if grain < minTaskGrain {
		grain = minTaskGrain
	}
	numTasks := (need + grain - 1) / grain
	results := make(chan taskResult, numTasks)
	var edges, draws atomic.Int64
	for ti := 0; ti < numTasks; ti++ {
		lo := ti * grain
		hi := lo + grain
		if hi > need {
			hi = need
		}
		e.tasks <- genTask{
			idx: ti, lo: lo, hi: hi,
			seed: req.Seed, base: req.FirstIndex, ids: ids, strat: req.Strategy,
			inactive: req.Inactive, active: req.Active, etai: req.EtaI,
			results: results, edges: &edges, draws: &draws,
		}
	}
	ordered := make([]taskResult, numTasks)
	for i := 0; i < numTasks; i++ {
		tr := <-results
		ordered[tr.idx] = tr
	}
	return ordered, edges.Load(), draws.Load()
}
