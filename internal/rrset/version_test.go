package rrset

import (
	"fmt"
	"math"
	"testing"

	"asti/internal/diffusion"
	"asti/internal/gen"
	"asti/internal/graph"
	"asti/internal/rng"
)

// goldenGraph is the fixed graph behind the v1 byte-stability fixtures:
// a hub with a uniform in-block large enough to qualify for v2's
// geometric skipping (so the fixtures would catch v1 accidentally taking
// the new path), a weighted block that no version may skip, and a chain
// for multi-hop structure.
func goldenGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(32)
	// Uniform in-block of node 0: p=0.05, degree 24 → useGeomSkip holds
	// (24·(1−9·0.05) = 13.2 > 9). The same nodes form a p=0.35 ring so
	// sets rooted anywhere have depth to walk.
	for u := int32(1); u <= 24; u++ {
		b.AddEdge(u, 0, 0.05)
		b.AddEdge(u, u%24+1, 0.35)
	}
	// Weighted in-block of node 25: distinct probabilities.
	b.AddEdge(26, 25, 0.15)
	b.AddEdge(27, 25, 0.45)
	b.AddEdge(28, 25, 0.75)
	// Chain 31→30→29→1 at p=0.5 (uniform, but degree 1 → no skipping).
	b.AddEdge(31, 30, 0.5)
	b.AddEdge(30, 29, 0.5)
	b.AddEdge(29, 1, 0.5)
	// Tie the hub into the chain.
	b.AddEdge(25, 2, 0.3)
	b.AddEdge(0, 31, 0.9)
	g, err := b.Build("golden-v1", true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// v1GoldenIC / v1GoldenLT are frozen v1 sampler outputs on goldenGraph:
// RRStable sets for per-set seeds SplitMix64(0xA5T + i), i = 0..9. They
// were captured from the v1 implementation and must never change — v1 is
// the contract old write-ahead journals replay under, so any diff here
// means recovery of pre-versioning logs is broken.
var v1GoldenIC = [][]int32{
	{8},
	{23, 22, 21},
	{15},
	{14},
	{1, 24, 29, 23, 22},
	{2},
	{30},
	{6, 5, 4},
	{11},
	{26},
}

var v1GoldenLT = [][]int32{
	{8},
	{23, 22, 21},
	{15},
	{14},
	{1, 24, 23, 22},
	{2},
	{30},
	{6, 5, 4},
	{11},
	{26},
}

// goldenSets regenerates the fixture sets under version ver.
func goldenSets(t testing.TB, model diffusion.Model, ver Version) [][]int32 {
	t.Helper()
	g := goldenGraph(t)
	s := NewSamplerVersion(g, model, ver)
	out := make([][]int32, 10)
	for i := range out {
		r := rng.New(rng.SplitMix64(0xA57 + uint64(i)))
		set := s.RRStable(nil, r, nil)
		out[i] = append([]int32(nil), set...)
	}
	return out
}

// TestV1GoldenByteStability pins the v1 stream contract to frozen
// fixtures: the exact sets, element order included, that v1 produced
// when versioning was introduced.
func TestV1GoldenByteStability(t *testing.T) {
	for _, tc := range []struct {
		model diffusion.Model
		want  [][]int32
	}{{diffusion.IC, v1GoldenIC}, {diffusion.LT, v1GoldenLT}} {
		got := goldenSets(t, tc.model, V1)
		for i := range tc.want {
			if fmt.Sprint(got[i]) != fmt.Sprint(tc.want[i]) {
				t.Errorf("%s set %d: got %v, want frozen %v", tc.model, i, got[i], tc.want[i])
			}
		}
	}
}

// TestV2MatchesV1OutsideGeomBlocks: on a graph where no in-block
// qualifies for geometric skipping (here p ≥ 0.5 everywhere), v2 must be
// byte-identical to v1 — the new contract only diverges where the
// optimization fires.
func TestV2MatchesV1OutsideGeomBlocks(t *testing.T) {
	g, err := gen.ErdosRenyi("no-skip", 300, 6, true, 17)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ApplyUniformProb(0.6); err != nil { // p ≥ 0.5 → useGeomSkip never holds
		t.Fatal(err)
	}
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s1 := NewSamplerVersion(g, model, V1)
		s2 := NewSamplerVersion(g, model, V2)
		for i := 0; i < 200; i++ {
			seed := rng.SplitMix64(0xBEEF + uint64(i))
			a := append([]int32(nil), s1.RRStable(nil, rng.New(seed), nil)...)
			b := s2.RRStable(nil, rng.New(seed), nil)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("%s seed %d: v1 %v vs v2 %v", model, i, a, b)
			}
		}
		if s1.RngDraws != s2.RngDraws {
			t.Fatalf("%s: draw counts diverged with skipping inert: v1 %d vs v2 %d", model, s1.RngDraws, s2.RngDraws)
		}
	}
}

// TestV1V2StatisticalEquivalence: on a uniform-probability graph where
// geometric skipping does fire, v1 and v2 sample from the same
// distribution — mean set size agrees within Monte-Carlo tolerance —
// while v2 consumes far fewer random draws.
func TestV1V2StatisticalEquivalence(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		Name: "equiv", N: 4000, AvgDeg: 20, UniformMix: 1.0, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ApplyUniformProb(0.01); err != nil { // low p + fat in-blocks → skipping dominates
		t.Fatal(err)
	}
	const sets = 30000
	mean := func(ver Version) (float64, int64) {
		s := NewSamplerVersion(g, diffusion.IC, ver)
		var total int64
		for i := 0; i < sets; i++ {
			// Distinct seed ranges per version: the equivalence claimed is
			// distributional, not stream-for-stream.
			seed := rng.SplitMix64(uint64(ver)<<32 + uint64(i))
			total += int64(len(s.RRStable(nil, rng.New(seed), nil)))
		}
		return float64(total) / sets, s.RngDraws
	}
	m1, d1 := mean(V1)
	m2, d2 := mean(V2)
	if rel := math.Abs(m1-m2) / m1; rel > 0.05 {
		t.Fatalf("mean set size diverged: v1 %.4f vs v2 %.4f (%.1f%%)", m1, m2, 100*rel)
	}
	if d2*2 >= d1 {
		t.Fatalf("geometric skipping saved too little: v1 %d draws vs v2 %d", d1, d2)
	}
}

// TestEngineVersionedDeterministicAcrossWorkers re-states the engine's
// determinism contract per version: for each contract, every worker
// count produces the byte-identical pool.
func TestEngineVersionedDeterministicAcrossWorkers(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		Name: "ver-workers", N: 2500, AvgDeg: 6, UniformMix: 1.0, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.ApplyWeightedCascade()
	nodes := make([]int32, g.N())
	for i := range nodes {
		nodes[i] = int32(i)
	}
	run := func(ver Version, workers int) (*Collection, GenStats) {
		e := NewEngineVersion(g, diffusion.IC, workers, ver)
		defer e.Close()
		coll := NewCollection(g)
		stats := e.Generate(coll, Request{
			Strategy: MultiRoot(RoundRandomized), Inactive: nodes, EtaI: 80,
			Count: 500, Seed: 0xFACADE,
		})
		return coll, stats
	}
	for _, ver := range []Version{V1, V2} {
		ref, refStats := run(ver, 1)
		for _, workers := range []int{2, 4} {
			got, gotStats := run(ver, workers)
			if got.Size() != ref.Size() || gotStats.SetNodes != refStats.SetNodes ||
				gotStats.RngDraws != refStats.RngDraws {
				t.Fatalf("v%d workers=%d: stats %+v vs %+v", ver, workers, gotStats, refStats)
			}
			for id := int32(0); id < int32(ref.Size()); id++ {
				if fmt.Sprint(got.Set(id)) != fmt.Sprint(ref.Set(id)) {
					t.Fatalf("v%d workers=%d: set %d differs", ver, workers, id)
				}
			}
		}
	}
}

// TestUseGeomSkipBoundary pins the decision rule: it must be a pure
// function of (p, degree) — that purity is what keeps v2
// residual-stable — and flip exactly where the draw-count model says
// skipping pays.
func TestUseGeomSkipBoundary(t *testing.T) {
	cases := []struct {
		p    float64
		d    int
		want bool
	}{
		{0.05, 24, true},       // golden-graph hub block: 24·0.55 = 13.2 > 9
		{0.05, 16, false},      // 16·0.55 = 8.8 — too small to amortize the log
		{1.0 / 9, 1000, false}, // p ≥ 1/9 never skips
		{0.11, 1000, true},     // 1000·0.01 = 10 > 9
		{0.01, 10, true},       // 10·0.91 = 9.1 > 9
		{0.01, 9, false},       // 9·0.91 = 8.19
		{0.0, 9, false},        // 9·1 = 9, not > 9
		{0.0, 10, true},        // 10·1 = 10 > 9
		{1.0 / 19, 19, true},   // weighted cascade fires from in-degree 19 up
		{1.0 / 18, 18, false},  // ...and not below
	}
	for _, c := range cases {
		if got := useGeomSkip(c.p, c.d); got != c.want {
			t.Errorf("useGeomSkip(%g, %d) = %v, want %v", c.p, c.d, got, c.want)
		}
	}
}

// benchPropagateGraph builds the benchmark graph once per probability
// setting: weighted cascade is per-node-uniform (geometric skipping
// fires on fat in-blocks), "uniform" is one global low probability.
func benchPropagateGraph(b *testing.B, weighted bool) *graph.Graph {
	b.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		Name: "bench-propagate", N: 20000, AvgDeg: 8, UniformMix: 1.0, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	if weighted {
		g.ApplyWeightedCascade()
	} else if err := g.ApplyUniformProb(0.02); err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkPropagate measures raw reverse-BFS sampling — the inner loop
// every selection spends its time in — across the model × probability
// matrix, per sampler version. Compare v1 vs v2 on the IC rows to read
// the geometric-skipping win; LT rows pin that v2 costs LT nothing.
func BenchmarkPropagate(b *testing.B) {
	for _, bc := range []struct {
		name     string
		model    diffusion.Model
		weighted bool
	}{
		{"IC/uniform", diffusion.IC, false},
		{"IC/weighted", diffusion.IC, true},
		{"LT/uniform", diffusion.LT, false},
		{"LT/weighted", diffusion.LT, true},
	} {
		g := benchPropagateGraph(b, bc.weighted)
		inactive := make([]int32, g.N())
		for i := range inactive {
			inactive[i] = int32(i)
		}
		for _, ver := range []Version{V1, V2} {
			b.Run(fmt.Sprintf("%s/v%d", bc.name, ver), func(b *testing.B) {
				s := NewSamplerVersion(g, bc.model, ver)
				r := rng.New(1)
				var nodes int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					nodes += int64(len(s.MRR(10, inactive, nil, r, nil)))
				}
				b.ReportMetric(float64(s.EdgesExamined)/float64(b.N), "edges/op")
				b.ReportMetric(float64(s.RngDraws)/float64(b.N), "draws/op")
				_ = nodes
			})
		}
	}
}
