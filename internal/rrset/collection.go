package rrset

import (
	"unsafe"

	"asti/internal/graph"
)

// Collection accumulates mRR (or RR) sets and maintains the coverage
// counts Λ_R(v) — the number of stored sets containing v — plus an
// inverted index (node → set ids) for greedy max-coverage. It backs both
// TRIM (argmax over Λ) and TRIM-B / ATEUC (greedy coverage).
//
// Storage is slotted over an arena: stored set id's data lives at
// data.at(setPos[id], setLen[id]), so Add copies the set instead of
// taking ownership, and Replace can regenerate one set in place (reusing
// its hole when the new set fits, allocating a fresh slot otherwise;
// dead entries are reclaimed by an amortized compaction into recycled
// slabs). The inverted index is a CSR pair built lazily — once per
// doubling round rather than appended to per set — and every per-node
// counter touched since the last Reset is remembered in a touched list,
// making Reset O(touched) instead of O(n). One Collection therefore
// serves every round of an adaptive run without reallocating, and —
// through Prune/Replace/Truncate — can carry its pool ACROSS rounds,
// which is the cross-round reuse optimization behind
// trim.Config.ReusePool.
type Collection struct {
	n     int32
	count int   // sets accounted for (stored or counts-only)
	nodes int64 // Σ|R| over all accounted sets

	cov       []int64 // Λ_R(v)
	touched   []int32 // nodes v whose counter was ever incremented, for O(touched) reset
	inTouched []bool  // touched-list membership, so Replace never duplicates entries

	// Stored sets, slotted (set id -> data.at(setPos[id], setLen[id])).
	setPos []setRef
	setLen []int32
	rootK  []int32 // per-set root count (0 = unknown, never reusable)
	data   arena
	dead   int64 // arena entries no slot references (holes from Replace/Truncate)

	// Lazy CSR inverted index over the stored sets: node v's set ids are
	// idxSets[idxOff[v]:idxOff[v+1]]. Valid while idxBuilt == stored count;
	// -1 marks it never built (or invalidated by Reset/Replace/Truncate).
	idxOff   []int64
	idxSets  []int32
	idxBuilt int

	// Epoch-stamped per-set marks: marks[id] == markEpoch means "id seen in
	// the current walk". Bumping the epoch clears all marks in O(1).
	marks     []int64
	markEpoch int64

	// Epoch-stamped per-node marks for Prune's delta-membership scan
	// (lazily sized to n).
	nmark      []int64
	nmarkEpoch int64

	// heap is the reusable (gain, node) max-heap scratch of the CELF-style
	// lazy greedy.
	heap []heapEntry
}

// NewCollection returns an empty Collection over graphs with n nodes.
// The coverage and index scratch are pre-sized from the graph (n and
// the n+1 index offsets), so the first rounds never regrow them.
func NewCollection(g *graph.Graph) *Collection {
	return &Collection{
		n:         g.N(),
		cov:       make([]int64, g.N()),
		inTouched: make([]bool, g.N()),
		idxOff:    make([]int64, g.N()+1),
		nmark:     make([]int64, g.N()),
		idxBuilt:  -1,
	}
}

// stored returns the number of stored (not counts-only) sets.
func (c *Collection) stored() int { return len(c.setPos) }

// Stored returns the number of stored (not counts-only) sets.
func (c *Collection) Stored() int { return c.stored() }

// covAdd increments Λ_R(v) for every member of set.
func (c *Collection) covAdd(set []int32) {
	for _, v := range set {
		if !c.inTouched[v] {
			c.inTouched[v] = true
			c.touched = append(c.touched, v)
		}
		c.cov[v]++
	}
}

// covSub decrements Λ_R(v) for every member of set.
func (c *Collection) covSub(set []int32) {
	for _, v := range set {
		c.cov[v]--
	}
}

// Add stores a copy of one set and updates coverage. The caller keeps
// ownership of the slice and may reuse it. Mixing Add and AddCountsOnly in
// one Collection is not supported: greedy coverage would silently ignore
// the counts-only sets.
func (c *Collection) Add(set []int32) { c.AddRooted(set, 0) }

// AddRooted is Add recording the set's root count (its first rootK
// members are the roots, in draw order). The root count is what
// Prune's root-size replay compares against; sets added with rootK 0
// are treated as never reusable under a multi-root strategy.
func (c *Collection) AddRooted(set []int32, rootK int32) {
	ref, buf := c.data.alloc(len(set))
	copy(buf, set)
	c.setPos = append(c.setPos, ref)
	c.setLen = append(c.setLen, int32(len(set)))
	c.rootK = append(c.rootK, rootK)
	c.count++
	c.nodes += int64(len(set))
	c.covAdd(set)
}

// AddCountsOnly updates the coverage counts Λ_R(v) without retaining the
// set. TRIM with batch size 1 only ever needs argmax over Λ, so skipping
// storage and the inverted index removes the dominant memory traffic of a
// round (the caller may reuse the slice).
func (c *Collection) AddCountsOnly(set []int32) {
	c.count++
	c.nodes += int64(len(set))
	c.covAdd(set)
}

// Replace regenerates stored set id in place: coverage counters are
// updated for the old and new members only (O(|old|+|new|)), the new data
// reuses the old slot when it fits, and the inverted index is invalidated.
// The caller keeps ownership of the slice.
func (c *Collection) Replace(id int32, set []int32, rootK int32) {
	if c.count != c.stored() {
		panic("rrset: Replace on a counts-only collection")
	}
	old := c.Set(id)
	c.covSub(old)
	c.nodes += int64(len(set)) - int64(len(old))
	if len(set) <= len(old) {
		copy(old, set)
		c.dead += int64(len(old) - len(set))
	} else {
		c.dead += int64(len(old))
		ref, buf := c.data.alloc(len(set))
		copy(buf, set)
		c.setPos[id] = ref
	}
	c.setLen[id] = int32(len(set))
	c.rootK[id] = rootK
	c.covAdd(set)
	c.idxBuilt = -1
	c.maybeCompact()
}

// Truncate drops every stored set with id ≥ m, updating coverage counters
// in O(nodes dropped). It exists so a reused pool can shrink back to a
// round's starting target θ_0 before selection (a fresh pool would not
// have the extra sets, and the determinism contract requires reuse to be
// invisible in the output).
func (c *Collection) Truncate(m int) {
	if m < 0 || m > c.stored() {
		panic("rrset: Truncate out of range")
	}
	if c.count != c.stored() {
		panic("rrset: Truncate on a counts-only collection")
	}
	for id := int32(m); id < int32(c.stored()); id++ {
		set := c.Set(id)
		c.covSub(set)
		c.nodes -= int64(len(set))
		c.dead += int64(len(set))
	}
	c.setPos = c.setPos[:m]
	c.setLen = c.setLen[:m]
	c.rootK = c.rootK[:m]
	c.count = m
	c.idxBuilt = -1
	c.maybeCompact()
}

// maybeCompact rewrites the arena without holes once more than half of
// it (and at least a page worth) is dead, keeping Replace/Truncate
// amortized O(touched). Live sets are copied in id order into a fresh
// arena view that inherits the free list, and the vacated slabs are
// recycled onto it — compaction after warm-up therefore shuffles
// existing slabs instead of allocating (the old path built a scratch
// buffer the size of the live data every time).
func (c *Collection) maybeCompact() {
	if c.dead <= c.data.used/2 || c.dead < 4096 {
		return
	}
	old := c.data
	c.data = arena{slabInts: old.slabInts, free: old.free}
	old.free = nil
	for id := range c.setPos {
		n := c.setLen[id]
		ref, buf := c.data.alloc(int(n))
		copy(buf, old.at(c.setPos[id], n))
		c.setPos[id] = ref
	}
	// The vacated slabs feed the next growth or compaction cycle.
	for i := len(old.slabs) - 1; i >= 0; i-- {
		c.data.free = append(c.data.free, old.slabs[i][:0])
	}
	c.dead = 0
}

// Size returns the number of sets accounted for.
func (c *Collection) Size() int { return c.count }

// TotalNodes returns the sum of set sizes (memory/cost proxy).
func (c *Collection) TotalNodes() int64 { return c.nodes }

// MemoryBytes estimates the collection's heap footprint: the capacity of
// every backing slice times its element size. It is an accounting
// estimate (map/struct headers and allocator slack are not counted), but
// it tracks the dominant cost — the set-payload arena plus the per-node
// arrays — and
// is what the serve layer rolls up into its pool-memory gauge.
func (c *Collection) MemoryBytes() int64 {
	const (
		i64  = 8
		i32  = 4
		b    = 1
		heap = int64(unsafe.Sizeof(heapEntry{}))
	)
	return int64(cap(c.cov))*i64 +
		int64(cap(c.touched))*i32 +
		int64(cap(c.inTouched))*b +
		int64(cap(c.setPos))*i64 + // setRef is two int32s
		int64(cap(c.setLen))*i32 +
		int64(cap(c.rootK))*i32 +
		c.data.capInts()*i32 +
		int64(cap(c.idxOff))*i64 +
		int64(cap(c.idxSets))*i32 +
		int64(cap(c.marks))*i64 +
		int64(cap(c.nmark))*i64 +
		int64(cap(c.heap))*heap
}

// Coverage returns Λ_R(v).
func (c *Collection) Coverage(v int32) int64 { return c.cov[v] }

// Set returns the id-th stored set (read-only). The slice aliases arena
// storage; it stays valid across growth (slabs never move) but not
// across compaction or Reset.
func (c *Collection) Set(id int32) []int32 {
	return c.data.at(c.setPos[id], c.setLen[id])
}

// RootK returns the recorded root count of the id-th stored set (0 if it
// was added without one).
func (c *Collection) RootK(id int32) int32 { return c.rootK[id] }

// IndexOf returns the ids of the stored sets containing v (read-only; the
// slice is invalidated by the next mutation).
func (c *Collection) IndexOf(v int32) []int32 {
	c.buildIndex()
	return c.idxSets[c.idxOff[v]:c.idxOff[v+1]]
}

// buildIndex (re)builds the CSR inverted index over the stored sets. It
// runs once per doubling round — consumers query only after a batch of
// mutations — so the flat two-pass build replaces per-set slice appends on
// every node.
func (c *Collection) buildIndex() {
	if c.idxBuilt == c.stored() {
		return
	}
	if cap(c.idxOff) < int(c.n)+1 {
		c.idxOff = make([]int64, c.n+1)
	}
	c.idxOff = c.idxOff[:c.n+1]
	for i := range c.idxOff {
		c.idxOff[i] = 0
	}
	// Pass 1: counts shifted by one so pass 2 can bump in place.
	live := c.data.used - c.dead
	for id := 0; id < c.stored(); id++ {
		for _, v := range c.Set(int32(id)) {
			c.idxOff[v+1]++
		}
	}
	for v := int32(0); v < c.n; v++ {
		c.idxOff[v+1] += c.idxOff[v]
	}
	if int64(cap(c.idxSets)) < live {
		c.idxSets = make([]int32, live)
	}
	c.idxSets = c.idxSets[:live]
	for id := 0; id < c.stored(); id++ {
		for _, v := range c.Set(int32(id)) {
			c.idxSets[c.idxOff[v]] = int32(id)
			c.idxOff[v]++
		}
	}
	// Shift the bumped offsets back down.
	for v := c.n; v > 0; v-- {
		c.idxOff[v] = c.idxOff[v-1]
	}
	c.idxOff[0] = 0
	c.idxBuilt = c.stored()
}

// nextEpoch returns a fresh mark epoch, growing the per-set mark array to
// the current stored count.
func (c *Collection) nextEpoch() int64 {
	if len(c.marks) < c.stored() {
		c.marks = append(c.marks, make([]int64, c.stored()-len(c.marks))...)
	}
	c.markEpoch++
	return c.markEpoch
}

// Prune identifies the stored sets invalidated by an activation delta:
// every set containing a newly activated node (as root or member — the
// masked node was reached, so regeneration under the grown mask diverges),
// plus every set the alsoStale callback flags (trim uses it to replay the
// root-size draw under the new n_i/η_i and catch root-count shifts). The
// returned ids are ascending; the caller regenerates exactly those sets —
// typically through Engine.Refresh — and may keep every other set as-is:
// by residual stability (see the package comment) the kept sets are
// byte-identical to what full regeneration would produce.
//
// Prune itself mutates nothing. It deliberately avoids the inverted index
// (which TRIM's argmax path never builds): the delta is marked in a
// per-node epoch array and the stored data is scanned flat, one
// sequential O(TotalNodes) pass with early exit per set.
func (c *Collection) Prune(newlyActive []int32, alsoStale func(id, rootK int32) bool) []int32 {
	if c.count != c.stored() {
		panic("rrset: Prune on a counts-only collection")
	}
	if c.stored() == 0 {
		return nil
	}
	if len(c.nmark) < int(c.n) {
		c.nmark = make([]int64, c.n)
	}
	c.nmarkEpoch++
	e := c.nmarkEpoch
	for _, v := range newlyActive {
		c.nmark[v] = e
	}
	var stale []int32
	for id := int32(0); id < int32(c.stored()); id++ {
		hit := false
		for _, v := range c.Set(id) {
			if c.nmark[v] == e {
				hit = true
				break
			}
		}
		if hit || (alsoStale != nil && alsoStale(id, c.rootK[id])) {
			stale = append(stale, id)
		}
	}
	return stale
}

// ArgmaxCoverage returns the node with maximum Λ_R(v) restricted to the
// candidate list (nil = all nodes), and its coverage. Ties break toward
// the smaller node id for determinism (candidate lists are expected in
// ascending order, as adaptive.State.Inactive always is).
//
//asm:hotpath
func (c *Collection) ArgmaxCoverage(candidates []int32) (best int32, cov int64) {
	best = -1
	if candidates == nil {
		for v := int32(0); v < c.n; v++ {
			if c.cov[v] > cov || best < 0 {
				best, cov = v, c.cov[v]
			}
		}
		return best, cov
	}
	for _, v := range candidates {
		if best < 0 || c.cov[v] > cov {
			best, cov = v, c.cov[v]
		}
	}
	return best, cov
}

// heapEntry is one (cached marginal gain, node) pair of the lazy greedy.
type heapEntry struct {
	gain int64
	node int32
}

// before orders the lazy-greedy heap: larger gain first, smaller node id
// on ties — matching ArgmaxCoverage's tie-break, so selections stay
// deterministic and independent of heap internals.
func (a heapEntry) before(b heapEntry) bool {
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	return a.node < b.node
}

// heapPush sifts e up into the lazy-gain heap.
//
//asm:hotpath
func (c *Collection) heapPush(e heapEntry) {
	c.heap = append(c.heap, e)
	i := len(c.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !c.heap[i].before(c.heap[p]) {
			break
		}
		c.heap[i], c.heap[p] = c.heap[p], c.heap[i]
		i = p
	}
}

// heapPop removes and returns the heap maximum.
//
//asm:hotpath
func (c *Collection) heapPop() heapEntry {
	top := c.heap[0]
	last := len(c.heap) - 1
	c.heap[0] = c.heap[last]
	c.heap = c.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && c.heap[l].before(c.heap[best]) {
			best = l
		}
		if r < last && c.heap[r].before(c.heap[best]) {
			best = r
		}
		if best == i {
			break
		}
		c.heap[i], c.heap[best] = c.heap[best], c.heap[i]
		i = best
	}
	return top
}

// GreedyMaxCoverage selects up to b nodes greedily maximizing marginal
// set coverage (the classic (1-(1-1/b)^b)-approximate max-coverage greedy
// the paper uses in TRIM-B, Line 8). It returns the selected nodes and the
// number of sets they jointly cover. Coverage state in the Collection is
// not modified.
//
// The walk is a CELF-style lazy greedy over the inverted index: a max-heap
// caches each candidate's last evaluated marginal gain (initially Λ_R(v),
// exact). Because gains only shrink as sets get covered, a cached entry is
// an upper bound — the popped maximum is re-evaluated by counting its
// uncovered sets, and selected only if the fresh value still tops the
// heap. This replaces the previous O(candidates) re-scan per pick with a
// handful of index-degree-sized evaluations, and selects the exact same
// nodes (gain descending, node id ascending on ties). Scratch (heap, epoch
// marks) is reused, so repeated calls do not allocate after warm-up.
//
// candidates restricts selection (nil = all nodes) and must not contain
// duplicates. Selection stops early once every remaining set is covered.
//
//asm:hotpath
func (c *Collection) GreedyMaxCoverage(b int, candidates []int32) (seeds []int32, covered int64) {
	if b <= 0 {
		return nil, 0
	}
	c.buildIndex()
	epoch := c.nextEpoch() // marks[id] == epoch ⇔ set id already covered
	c.heap = c.heap[:0]
	if candidates == nil {
		for v := int32(0); v < c.n; v++ {
			if c.cov[v] > 0 {
				c.heapPush(heapEntry{gain: c.cov[v], node: v})
			}
		}
	} else {
		for _, v := range candidates {
			if c.cov[v] > 0 {
				c.heapPush(heapEntry{gain: c.cov[v], node: v})
			}
		}
	}
	for len(seeds) < b && len(c.heap) > 0 {
		top := c.heapPop()
		// Re-evaluate: count sets containing top that are still uncovered.
		var fresh int64
		for _, id := range c.IndexOf(top.node) {
			if c.marks[id] != epoch {
				fresh++
			}
		}
		if fresh == 0 {
			continue // fully covered; drop (and everything below may follow)
		}
		if fresh == top.gain {
			// Cached bound was exact ⇒ top beats every other upper bound.
			seeds = append(seeds, top.node)
			covered += fresh
			for _, id := range c.IndexOf(top.node) {
				c.marks[id] = epoch
			}
			continue
		}
		c.heapPush(heapEntry{gain: fresh, node: top.node})
	}
	return seeds, covered
}

// CoverageOf returns the number of stored sets intersecting the node set S.
// It reuses the epoch-stamped per-set marks, so it allocates nothing after
// the marks have grown to the pool size.
//
//asm:hotpath
func (c *Collection) CoverageOf(S []int32) int64 {
	c.buildIndex()
	epoch := c.nextEpoch()
	var seen int64
	for _, v := range S {
		for _, id := range c.IndexOf(v) {
			if c.marks[id] != epoch {
				c.marks[id] = epoch
				seen++
			}
		}
	}
	return seen
}

// Reset drops all sets in O(touched) — only the coverage counters that
// were actually incremented since the last Reset are zeroed — and keeps
// every allocated buffer for reuse by the next round.
func (c *Collection) Reset() {
	for _, v := range c.touched {
		c.cov[v] = 0
		c.inTouched[v] = false
	}
	c.touched = c.touched[:0]
	c.setPos = c.setPos[:0]
	c.setLen = c.setLen[:0]
	c.rootK = c.rootK[:0]
	c.data.reset()
	c.dead = 0
	c.idxBuilt = -1
	c.count = 0
	c.nodes = 0
}
