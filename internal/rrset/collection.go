package rrset

import "asti/internal/graph"

// Collection accumulates mRR (or RR) sets and maintains the coverage
// counts Λ_R(v) — the number of stored sets containing v — plus an
// inverted index (node → set ids) for greedy max-coverage. It backs both
// TRIM (argmax over Λ) and TRIM-B / ATEUC (greedy coverage).
type Collection struct {
	n     int32
	count int // sets accounted for (stored or counts-only)
	sets  [][]int32
	cov   []int64   // Λ_R(v)
	index [][]int32 // node -> ids of sets containing it
	nodes int64     // Σ|R| over all accounted sets
}

// NewCollection returns an empty Collection over graphs with n nodes.
func NewCollection(g *graph.Graph) *Collection {
	return &Collection{
		n:     g.N(),
		cov:   make([]int64, g.N()),
		index: make([][]int32, g.N()),
	}
}

// Add stores one set (taking ownership of the slice) and updates coverage.
// Mixing Add and AddCountsOnly in one Collection is not supported: greedy
// coverage would silently ignore the counts-only sets.
func (c *Collection) Add(set []int32) {
	id := int32(len(c.sets))
	c.sets = append(c.sets, set)
	c.count++
	c.nodes += int64(len(set))
	for _, v := range set {
		c.cov[v]++
		c.index[v] = append(c.index[v], id)
	}
}

// AddCountsOnly updates the coverage counts Λ_R(v) without retaining the
// set. TRIM with batch size 1 only ever needs argmax over Λ, so skipping
// storage and the inverted index removes the dominant memory traffic of a
// round (the caller may reuse the slice).
func (c *Collection) AddCountsOnly(set []int32) {
	c.count++
	c.nodes += int64(len(set))
	for _, v := range set {
		c.cov[v]++
	}
}

// Size returns the number of sets accounted for.
func (c *Collection) Size() int { return c.count }

// TotalNodes returns the sum of set sizes (memory/cost proxy).
func (c *Collection) TotalNodes() int64 { return c.nodes }

// Coverage returns Λ_R(v).
func (c *Collection) Coverage(v int32) int64 { return c.cov[v] }

// Set returns the id-th stored set (read-only).
func (c *Collection) Set(id int32) []int32 { return c.sets[id] }

// IndexOf returns the ids of the stored sets containing v (read-only).
func (c *Collection) IndexOf(v int32) []int32 { return c.index[v] }

// ArgmaxCoverage returns the node with maximum Λ_R(v) restricted to the
// candidate list (nil = all nodes), and its coverage. Ties break toward
// the smaller node id for determinism.
func (c *Collection) ArgmaxCoverage(candidates []int32) (best int32, cov int64) {
	best = -1
	if candidates == nil {
		for v := int32(0); v < c.n; v++ {
			if c.cov[v] > cov || best < 0 {
				best, cov = v, c.cov[v]
			}
		}
		return best, cov
	}
	for _, v := range candidates {
		if best < 0 || c.cov[v] > cov {
			best, cov = v, c.cov[v]
		}
	}
	return best, cov
}

// GreedyMaxCoverage selects up to b nodes greedily maximizing marginal
// set coverage (the classic (1-(1-1/b)^b)-approximate max-coverage greedy
// the paper uses in TRIM-B, Line 8). It returns the selected nodes and the
// number of sets they jointly cover. Coverage state in the Collection is
// not modified; the walk uses temporary marks.
//
// candidates restricts selection (nil = all nodes). Selection stops early
// if every remaining set is covered.
func (c *Collection) GreedyMaxCoverage(b int, candidates []int32) (seeds []int32, covered int64) {
	if b <= 0 {
		return nil, 0
	}
	marg := make([]int64, c.n)
	copy(marg, c.cov)
	coveredSet := make([]bool, len(c.sets))
	for len(seeds) < b {
		var best int32 = -1
		var bestCov int64
		if candidates == nil {
			for v := int32(0); v < c.n; v++ {
				if best < 0 || marg[v] > bestCov {
					best, bestCov = v, marg[v]
				}
			}
		} else {
			for _, v := range candidates {
				if best < 0 || marg[v] > bestCov {
					best, bestCov = v, marg[v]
				}
			}
		}
		if best < 0 || bestCov == 0 {
			break
		}
		seeds = append(seeds, best)
		covered += bestCov
		// Retire every set newly covered by best and decrement the marginal
		// coverage of its members.
		for _, id := range c.index[best] {
			if coveredSet[id] {
				continue
			}
			coveredSet[id] = true
			for _, w := range c.sets[id] {
				marg[w]--
			}
		}
	}
	return seeds, covered
}

// CoverageOf returns the number of stored sets intersecting the node set S.
func (c *Collection) CoverageOf(S []int32) int64 {
	seen := make(map[int32]struct{}, 64)
	for _, v := range S {
		for _, id := range c.index[v] {
			seen[id] = struct{}{}
		}
	}
	return int64(len(seen))
}

// Reset drops all stored sets but keeps allocated capacity where possible.
func (c *Collection) Reset() {
	c.sets = c.sets[:0]
	c.count = 0
	c.nodes = 0
	for i := range c.cov {
		c.cov[i] = 0
	}
	for i := range c.index {
		c.index[i] = c.index[i][:0]
	}
}
