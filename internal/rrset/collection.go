package rrset

import "asti/internal/graph"

// Collection accumulates mRR (or RR) sets and maintains the coverage
// counts Λ_R(v) — the number of stored sets containing v — plus an
// inverted index (node → set ids) for greedy max-coverage. It backs both
// TRIM (argmax over Λ) and TRIM-B / ATEUC (greedy coverage).
//
// Storage is flat: stored sets are concatenated into one CSR-style
// (data, offsets) pair, so Add copies the set instead of taking ownership
// and the caller's buffer is always reusable. The inverted index is a
// second CSR pair built lazily — once per doubling round rather than
// appended to per set — and every per-node counter touched since the last
// Reset is remembered in a touched list, making Reset O(touched) instead
// of O(n). One Collection therefore serves every round of an adaptive run
// without reallocating.
type Collection struct {
	n     int32
	count int   // sets accounted for (stored or counts-only)
	nodes int64 // Σ|R| over all accounted sets

	cov     []int64 // Λ_R(v)
	touched []int32 // nodes v with cov[v] > 0, for O(touched) reset

	// Stored sets, concatenated (set id -> setData[setOff[id]:setOff[id+1]]).
	setOff  []int64
	setData []int32

	// Lazy CSR inverted index over the stored sets: node v's set ids are
	// idxSets[idxOff[v]:idxOff[v+1]]. Valid while idxBuilt == stored count;
	// -1 marks it never built (or invalidated by Reset).
	idxOff   []int64
	idxSets  []int32
	idxBuilt int

	// Epoch-stamped per-set marks: marks[id] == markEpoch means "id seen in
	// the current walk". Bumping the epoch clears all marks in O(1).
	marks     []int64
	markEpoch int64

	// marg is the all-zero per-node scratch for greedy marginal coverage;
	// callers restore the zeros through the touched list.
	marg []int64
}

// NewCollection returns an empty Collection over graphs with n nodes.
func NewCollection(g *graph.Graph) *Collection {
	return &Collection{
		n:        g.N(),
		cov:      make([]int64, g.N()),
		setOff:   make([]int64, 1, 16),
		idxBuilt: -1,
	}
}

// stored returns the number of stored (not counts-only) sets.
func (c *Collection) stored() int { return len(c.setOff) - 1 }

// Add stores a copy of one set and updates coverage. The caller keeps
// ownership of the slice and may reuse it. Mixing Add and AddCountsOnly in
// one Collection is not supported: greedy coverage would silently ignore
// the counts-only sets.
func (c *Collection) Add(set []int32) {
	c.setData = append(c.setData, set...)
	c.setOff = append(c.setOff, int64(len(c.setData)))
	c.count++
	c.nodes += int64(len(set))
	for _, v := range set {
		if c.cov[v] == 0 {
			c.touched = append(c.touched, v)
		}
		c.cov[v]++
	}
}

// AddCountsOnly updates the coverage counts Λ_R(v) without retaining the
// set. TRIM with batch size 1 only ever needs argmax over Λ, so skipping
// storage and the inverted index removes the dominant memory traffic of a
// round (the caller may reuse the slice).
func (c *Collection) AddCountsOnly(set []int32) {
	c.count++
	c.nodes += int64(len(set))
	for _, v := range set {
		if c.cov[v] == 0 {
			c.touched = append(c.touched, v)
		}
		c.cov[v]++
	}
}

// Size returns the number of sets accounted for.
func (c *Collection) Size() int { return c.count }

// TotalNodes returns the sum of set sizes (memory/cost proxy).
func (c *Collection) TotalNodes() int64 { return c.nodes }

// Coverage returns Λ_R(v).
func (c *Collection) Coverage(v int32) int64 { return c.cov[v] }

// Set returns the id-th stored set (read-only).
func (c *Collection) Set(id int32) []int32 {
	return c.setData[c.setOff[id]:c.setOff[id+1]]
}

// IndexOf returns the ids of the stored sets containing v (read-only; the
// slice is invalidated by the next Add or Reset).
func (c *Collection) IndexOf(v int32) []int32 {
	c.buildIndex()
	return c.idxSets[c.idxOff[v]:c.idxOff[v+1]]
}

// buildIndex (re)builds the CSR inverted index over the stored sets. It
// runs once per doubling round — consumers query only after a batch of
// Adds — so the flat two-pass build replaces per-set slice appends on
// every node.
func (c *Collection) buildIndex() {
	if c.idxBuilt == c.stored() {
		return
	}
	if cap(c.idxOff) < int(c.n)+1 {
		c.idxOff = make([]int64, c.n+1)
	}
	c.idxOff = c.idxOff[:c.n+1]
	for i := range c.idxOff {
		c.idxOff[i] = 0
	}
	// Pass 1: counts shifted by one so pass 2 can bump in place.
	for _, v := range c.setData {
		c.idxOff[v+1]++
	}
	for v := int32(0); v < c.n; v++ {
		c.idxOff[v+1] += c.idxOff[v]
	}
	if cap(c.idxSets) < len(c.setData) {
		c.idxSets = make([]int32, len(c.setData))
	}
	c.idxSets = c.idxSets[:len(c.setData)]
	for id := 0; id < c.stored(); id++ {
		for _, v := range c.setData[c.setOff[id]:c.setOff[id+1]] {
			c.idxSets[c.idxOff[v]] = int32(id)
			c.idxOff[v]++
		}
	}
	// Shift the bumped offsets back down.
	for v := c.n; v > 0; v-- {
		c.idxOff[v] = c.idxOff[v-1]
	}
	c.idxOff[0] = 0
	c.idxBuilt = c.stored()
}

// nextEpoch returns a fresh mark epoch, growing the per-set mark array to
// the current stored count.
func (c *Collection) nextEpoch() int64 {
	if len(c.marks) < c.stored() {
		c.marks = append(c.marks, make([]int64, c.stored()-len(c.marks))...)
	}
	c.markEpoch++
	return c.markEpoch
}

// ArgmaxCoverage returns the node with maximum Λ_R(v) restricted to the
// candidate list (nil = all nodes), and its coverage. Ties break toward
// the smaller node id for determinism.
func (c *Collection) ArgmaxCoverage(candidates []int32) (best int32, cov int64) {
	best = -1
	if candidates == nil {
		for v := int32(0); v < c.n; v++ {
			if c.cov[v] > cov || best < 0 {
				best, cov = v, c.cov[v]
			}
		}
		return best, cov
	}
	for _, v := range candidates {
		if best < 0 || c.cov[v] > cov {
			best, cov = v, c.cov[v]
		}
	}
	return best, cov
}

// GreedyMaxCoverage selects up to b nodes greedily maximizing marginal
// set coverage (the classic (1-(1-1/b)^b)-approximate max-coverage greedy
// the paper uses in TRIM-B, Line 8). It returns the selected nodes and the
// number of sets they jointly cover. Coverage state in the Collection is
// not modified; the walk uses reusable scratch (epoch marks for covered
// sets, a zero-restored marginal array), so repeated calls do not allocate.
//
// candidates restricts selection (nil = all nodes). Selection stops early
// if every remaining set is covered.
func (c *Collection) GreedyMaxCoverage(b int, candidates []int32) (seeds []int32, covered int64) {
	if b <= 0 {
		return nil, 0
	}
	c.buildIndex()
	epoch := c.nextEpoch()
	if len(c.marg) < int(c.n) {
		c.marg = make([]int64, c.n)
	}
	marg := c.marg
	for _, v := range c.touched {
		marg[v] = c.cov[v]
	}
	defer func() {
		for _, v := range c.touched {
			marg[v] = 0
		}
	}()
	for len(seeds) < b {
		var best int32 = -1
		var bestCov int64
		if candidates == nil {
			for v := int32(0); v < c.n; v++ {
				if best < 0 || marg[v] > bestCov {
					best, bestCov = v, marg[v]
				}
			}
		} else {
			for _, v := range candidates {
				if best < 0 || marg[v] > bestCov {
					best, bestCov = v, marg[v]
				}
			}
		}
		if best < 0 || bestCov == 0 {
			break
		}
		seeds = append(seeds, best)
		covered += bestCov
		// Retire every set newly covered by best and decrement the marginal
		// coverage of its members.
		for _, id := range c.IndexOf(best) {
			if c.marks[id] == epoch {
				continue
			}
			c.marks[id] = epoch
			for _, w := range c.Set(id) {
				marg[w]--
			}
		}
	}
	return seeds, covered
}

// CoverageOf returns the number of stored sets intersecting the node set S.
// It reuses the epoch-stamped per-set marks, so it allocates nothing after
// the marks have grown to the pool size.
func (c *Collection) CoverageOf(S []int32) int64 {
	c.buildIndex()
	epoch := c.nextEpoch()
	var seen int64
	for _, v := range S {
		for _, id := range c.IndexOf(v) {
			if c.marks[id] != epoch {
				c.marks[id] = epoch
				seen++
			}
		}
	}
	return seen
}

// Reset drops all sets in O(touched) — only the coverage counters that
// were actually incremented since the last Reset are zeroed — and keeps
// every allocated buffer for reuse by the next round.
func (c *Collection) Reset() {
	for _, v := range c.touched {
		c.cov[v] = 0
	}
	c.touched = c.touched[:0]
	c.setOff = c.setOff[:1]
	c.setData = c.setData[:0]
	c.idxBuilt = -1
	c.count = 0
	c.nodes = 0
}
