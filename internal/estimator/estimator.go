// Package estimator provides reference estimators for expected spread and
// expected truncated spread: Monte-Carlo estimation for realistic graphs
// and exact expectation by exhaustive realization enumeration for tiny
// graphs. The exact forms are the test oracles behind Theorem 3.3,
// Example 2.3 and the RR-set bias analysis in §3.2.
package estimator

import (
	"fmt"
	"math"

	"asti/internal/bitset"
	"asti/internal/diffusion"
	"asti/internal/graph"
	"asti/internal/rng"
)

// MCSpread estimates E[I(S | active)] — the expected marginal spread of
// seeds in the residual graph — by averaging `samples` fresh forward
// simulations.
func MCSpread(g *graph.Graph, model diffusion.Model, seeds []int32, active *bitset.Set, samples int, r *rng.Source) float64 {
	sim := diffusion.NewSimulator(g, model)
	var total float64
	for i := 0; i < samples; i++ {
		total += float64(sim.Spread(seeds, active, r))
	}
	return total / float64(samples)
}

// MCTruncated estimates E[Γ(S | active)] = E[min{I(S | active), eta}].
func MCTruncated(g *graph.Graph, model diffusion.Model, seeds []int32, active *bitset.Set, eta int64, samples int, r *rng.Source) float64 {
	sim := diffusion.NewSimulator(g, model)
	var total float64
	for i := 0; i < samples; i++ {
		s := int64(sim.Spread(seeds, active, r))
		if s > eta {
			s = eta
		}
		total += float64(s)
	}
	return total / float64(samples)
}

// maxExactEdges bounds exhaustive IC enumeration (2^m realizations).
const maxExactEdges = 22

// ExactIC enumerates all 2^m live-edge realizations of an IC graph and
// returns fn-weighted expectation, where fn maps the realized spread
// (number of nodes reachable from seeds) to a value. It is the common
// core of the exact oracles below.
func ExactIC(g *graph.Graph, seeds []int32, fn func(spread int) float64) (float64, error) {
	m := g.M()
	if m > maxExactEdges {
		return 0, fmt.Errorf("estimator: exact IC enumeration supports at most %d edges, graph has %d", maxExactEdges, m)
	}
	// Collect edges in dense out-edge order with probabilities.
	type edge struct {
		u, v int32
		p    float64
	}
	edges := make([]edge, 0, m)
	for u := int32(0); u < g.N(); u++ {
		adj := g.OutNeighbors(u)
		probs := g.OutProbs(u)
		for i, v := range adj {
			edges = append(edges, edge{u, v, float64(probs[i])})
		}
	}
	n := int(g.N())
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	// adjacency under a mask, rebuilt per realization: for tiny graphs a
	// direct scan over the edge list inside BFS is simplest and fast
	// enough.
	var expect float64
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		p := 1.0
		for i, e := range edges {
			if mask&(1<<uint(i)) != 0 {
				p *= e.p
			} else {
				p *= 1 - e.p
			}
		}
		if p == 0 {
			continue
		}
		for i := range visited {
			visited[i] = false
		}
		queue = queue[:0]
		for _, s := range seeds {
			if !visited[s] {
				visited[s] = true
				queue = append(queue, s)
			}
		}
		count := len(queue)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for i, e := range edges {
				if e.u != u || mask&(1<<uint(i)) == 0 || visited[e.v] {
					continue
				}
				visited[e.v] = true
				queue = append(queue, e.v)
				count++
			}
		}
		expect += p * fn(count)
	}
	return expect, nil
}

// ExactSpreadIC returns E[I(S)] by exhaustive enumeration.
func ExactSpreadIC(g *graph.Graph, seeds []int32) (float64, error) {
	return ExactIC(g, seeds, func(s int) float64 { return float64(s) })
}

// ExactTruncatedIC returns E[Γ(S)] = E[min{I(S), eta}] by exhaustive
// enumeration.
func ExactTruncatedIC(g *graph.Graph, seeds []int32, eta int64) (float64, error) {
	return ExactIC(g, seeds, func(s int) float64 {
		return math.Min(float64(s), float64(eta))
	})
}

// ExactMRRTruncatedIC returns the exact expectation E[Γ̃(S)] of the
// paper's binary mRR estimator: η · Pr[S ∩ R ≠ ∅] over both the random
// realization and the randomized-rounding root set K. S intersects R
// exactly when K hits the forward-reachable set of S, so for realized
// spread x the hit probability is 1 − E_k[C(n−x,k)/C(n,k)] — the p(x)
// appearing in the proof of Theorem 3.3.
func ExactMRRTruncatedIC(g *graph.Graph, seeds []int32, eta int64) (float64, error) {
	n := int64(g.N())
	kLow := n / eta
	frac := float64(n)/float64(eta) - float64(kLow)
	return ExactIC(g, seeds, func(spread int) float64 {
		x := int64(spread)
		missLow := hypergeomMiss(n, x, kLow)
		missHigh := hypergeomMiss(n, x, kLow+1)
		pMiss := (1-frac)*missLow + frac*missHigh
		return float64(eta) * (1 - pMiss)
	})
}

// hypergeomMiss returns C(n-x, k)/C(n, k): the probability that a uniform
// size-k subset of n nodes avoids a fixed set of x nodes.
func hypergeomMiss(n, x, k int64) float64 {
	if k > n-x {
		return 0
	}
	p := 1.0
	for i := int64(0); i < k; i++ {
		p *= float64(n-x-i) / float64(n-i)
	}
	return p
}

// ExactLT enumerates all chosen-in-edge assignments of an LT graph (each
// node independently picks one incoming edge with its probability, or
// none with the remaining mass) and returns the fn-weighted expectation.
// The number of realizations is Π(indeg_v + 1); callers should keep the
// graph tiny.
func ExactLT(g *graph.Graph, seeds []int32, fn func(spread int) float64) (float64, error) {
	n := int(g.N())
	total := 1.0
	for v := int32(0); v < g.N(); v++ {
		total *= float64(g.InDegree(v) + 1)
		if total > 4e6 {
			return 0, fmt.Errorf("estimator: exact LT enumeration too large (>4e6 realizations)")
		}
	}
	choice := make([]int32, n) // -1 = none, else local in-edge index
	visited := make([]bool, n)
	queue := make([]int32, 0, n)

	var expect float64
	var recurse func(v int32, p float64)
	evaluate := func(p float64) {
		for i := range visited {
			visited[i] = false
		}
		queue = queue[:0]
		for _, s := range seeds {
			if !visited[s] {
				visited[s] = true
				queue = append(queue, s)
			}
		}
		count := len(queue)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, w := range g.OutNeighbors(u) {
				if visited[w] {
					continue
				}
				ci := choice[w]
				if ci >= 0 && g.InNeighbors(w)[ci] == u {
					visited[w] = true
					queue = append(queue, w)
					count++
				}
			}
		}
		expect += p * fn(count)
	}
	recurse = func(v int32, p float64) {
		if p == 0 {
			return
		}
		if v == int32(n) {
			evaluate(p)
			return
		}
		probs := g.InProbs(v)
		rem := 1.0
		for i := range probs {
			choice[v] = int32(i)
			rem -= float64(probs[i])
			recurse(v+1, p*float64(probs[i]))
		}
		choice[v] = -1
		if rem < 0 {
			rem = 0
		}
		recurse(v+1, p*rem)
	}
	recurse(0, 1)
	return expect, nil
}

// ExactSpreadLT returns E[I(S)] under LT by exhaustive enumeration.
func ExactSpreadLT(g *graph.Graph, seeds []int32) (float64, error) {
	return ExactLT(g, seeds, func(s int) float64 { return float64(s) })
}

// ExactTruncatedLT returns E[min{I(S), eta}] under LT by exhaustive
// enumeration.
func ExactTruncatedLT(g *graph.Graph, seeds []int32, eta int64) (float64, error) {
	return ExactLT(g, seeds, func(s int) float64 {
		return math.Min(float64(s), float64(eta))
	})
}
