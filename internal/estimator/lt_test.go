package estimator

import (
	"math"
	"testing"

	"asti/internal/diffusion"
	"asti/internal/gen"
	"asti/internal/graph"
	"asti/internal/rng"
)

// TestExactTruncatedLT cross-checks the LT truncation oracle against the
// Monte-Carlo estimator and the η cap.
func TestExactTruncatedLT(t *testing.T) {
	g := gen.Line(5, 0.7)
	for eta := int64(1); eta <= 5; eta++ {
		exact, err := ExactTruncatedLT(g, []int32{0}, eta)
		if err != nil {
			t.Fatal(err)
		}
		if exact > float64(eta)+1e-12 {
			t.Fatalf("η=%d: E[Γ] = %v exceeds η", eta, exact)
		}
		mc := MCTruncated(g, diffusion.LT, []int32{0}, nil, eta, 30000, rng.New(uint64(eta)))
		if math.Abs(mc-exact) > 0.05*math.Max(1, exact) {
			t.Errorf("η=%d: MC %v vs exact %v", eta, mc, exact)
		}
	}
}

// TestExactLTMatchesChosenInArithmetic: a two-parent node under LT —
// E[I({u0,u1})] = 2 + p1 + p2 exactly (the child activates iff its single
// chosen in-edge points at either parent).
func TestExactLTMatchesChosenInArithmetic(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 2, 0.3)
	b.AddEdge(1, 2, 0.25)
	g := b.MustBuild("two-parent", true)
	got, err := ExactSpreadLT(g, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 + 0.3 + 0.25
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("E[I] = %v, want %v", got, want)
	}
	// Under IC the child activates with 1-(1-p1)(1-p2) instead.
	gotIC, err := ExactSpreadIC(g, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	wantIC := 2 + (1 - 0.7*0.75)
	if math.Abs(gotIC-wantIC) > 1e-6 {
		t.Fatalf("IC E[I] = %v, want %v", gotIC, wantIC)
	}
	if gotIC >= got {
		t.Fatal("LT must dominate IC on a two-parent contact (p1+p2 > 1-(1-p1)(1-p2))")
	}
}

// TestExactLTEnumerationGuard: the Π(indeg+1) explosion is rejected.
func TestExactLTEnumerationGuard(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Name: "big", N: 200, AvgDeg: 3, UniformMix: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExactSpreadLT(g, []int32{0}); err == nil {
		t.Fatal("oversized LT enumeration accepted")
	}
}

// TestTruncationAlgebra (Eq. 2/5 identities): Γ = min{I, η} pointwise,
// checked across the exact oracles: E[Γ] ≤ min{E[I], η} and E[Γ] = E[I]
// when η = n.
func TestTruncationAlgebra(t *testing.T) {
	g := gen.Figure1Graph()
	n := int64(g.N())
	for v := int32(0); v < g.N(); v++ {
		spread, err := ExactSpreadIC(g, []int32{v})
		if err != nil {
			t.Fatal(err)
		}
		for eta := int64(1); eta <= n; eta++ {
			trunc, err := ExactTruncatedIC(g, []int32{v}, eta)
			if err != nil {
				t.Fatal(err)
			}
			if trunc > spread+1e-12 || trunc > float64(eta)+1e-12 {
				t.Fatalf("v=%d η=%d: E[Γ]=%v violates min bound (E[I]=%v)", v, eta, trunc, spread)
			}
		}
		full, err := ExactTruncatedIC(g, []int32{v}, n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(full-spread) > 1e-12 {
			t.Fatalf("v=%d: η=n truncation must be exact spread (%v vs %v)", v, full, spread)
		}
	}
}
