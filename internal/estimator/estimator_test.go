package estimator

import (
	"math"
	"testing"

	"asti/internal/diffusion"
	"asti/internal/gen"
	"asti/internal/graph"
	"asti/internal/rng"
)

// TestExample23VanillaSpread reproduces the paper's Example 2.3: on the
// Figure 2 graph, E[I(v1)] = 0.25·(3+3+4+1) = 2.75 and the other nodes'
// expected spreads are 2, 2, 1.
func TestExample23VanillaSpread(t *testing.T) {
	g := gen.Figure2Graph()
	want := []float64{2.75, 2, 2, 1}
	for v, w := range want {
		got, err := ExactSpreadIC(g, []int32{int32(v)})
		if err != nil {
			t.Fatalf("ExactSpreadIC(v%d): %v", v+1, err)
		}
		if math.Abs(got-w) > 1e-12 {
			t.Errorf("E[I(v%d)] = %v, want %v", v+1, got, w)
		}
	}
}

// TestExample23TruncatedSpread checks the truncated spreads with η=2:
// 1.75, 2, 2, 1 — demonstrating that v2/v3 beat v1 under truncation.
func TestExample23TruncatedSpread(t *testing.T) {
	g := gen.Figure2Graph()
	want := []float64{1.75, 2, 2, 1}
	for v, w := range want {
		got, err := ExactTruncatedIC(g, []int32{int32(v)}, 2)
		if err != nil {
			t.Fatalf("ExactTruncatedIC(v%d): %v", v+1, err)
		}
		if math.Abs(got-w) > 1e-12 {
			t.Errorf("E[Γ(v%d)] = %v, want %v", v+1, got, w)
		}
	}
}

func fixtureGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"figure1": gen.Figure1Graph(),
		"figure2": gen.Figure2Graph(),
		"star":    gen.Star(6, 0.4),
		"line":    gen.Line(5, 0.7),
	}
}

// TestTheorem33Sandwich verifies the paper's Theorem 3.3 exactly:
// (1−1/e)·E[Γ(S)] ≤ E[Γ̃(S)] ≤ E[Γ(S)] for every singleton seed and every
// η, where Γ̃ is the binary mRR estimator with randomized-rounding root
// size. Both sides are computed by exhaustive realization enumeration.
func TestTheorem33Sandwich(t *testing.T) {
	lo := 1 - 1/math.E
	for name, g := range fixtureGraphs() {
		for eta := int64(1); eta <= int64(g.N()); eta++ {
			for v := int32(0); v < g.N(); v++ {
				S := []int32{v}
				exact, err := ExactTruncatedIC(g, S, eta)
				if err != nil {
					t.Fatalf("%s: ExactTruncatedIC: %v", name, err)
				}
				est, err := ExactMRRTruncatedIC(g, S, eta)
				if err != nil {
					t.Fatalf("%s: ExactMRRTruncatedIC: %v", name, err)
				}
				if est > exact+1e-9 {
					t.Errorf("%s η=%d v=%d: E[Γ̃]=%v exceeds E[Γ]=%v", name, eta, v, est, exact)
				}
				if est < lo*exact-1e-9 {
					t.Errorf("%s η=%d v=%d: E[Γ̃]=%v below (1−1/e)·E[Γ]=%v", name, eta, v, est, lo*exact)
				}
			}
		}
	}
}

// TestVanillaRRBias validates the §3.2 argument that single-root RR-sets
// are biased for truncated spread: the RR-based "estimator" η·Pr[R∩S≠∅] =
// (η/n)·E[I(S)] underestimates E[Γ(S)] whenever the spread never reaches
// n, with the discount η/n.
func TestVanillaRRBias(t *testing.T) {
	g := gen.Figure2Graph()
	eta := int64(2)
	n := float64(g.N())
	for v := int32(0); v < g.N(); v++ {
		spread, err := ExactSpreadIC(g, []int32{v})
		if err != nil {
			t.Fatal(err)
		}
		trunc, err := ExactTruncatedIC(g, []int32{v}, eta)
		if err != nil {
			t.Fatal(err)
		}
		rrEst := float64(eta) / n * spread
		if rrEst >= trunc {
			t.Errorf("v%d: RR-based estimate %v should be strictly below E[Γ]=%v", v+1, rrEst, trunc)
		}
	}
}

// TestMonteCarloMatchesExactIC cross-checks the Monte-Carlo estimators
// against the exact oracles within sampling tolerance.
func TestMonteCarloMatchesExactIC(t *testing.T) {
	r := rng.New(7)
	for name, g := range fixtureGraphs() {
		for v := int32(0); v < g.N(); v += 2 {
			exact, err := ExactSpreadIC(g, []int32{v})
			if err != nil {
				t.Fatal(err)
			}
			mc := MCSpread(g, diffusion.IC, []int32{v}, nil, 20000, r)
			if math.Abs(mc-exact) > 0.08*math.Max(1, exact) {
				t.Errorf("%s v=%d: MC spread %v vs exact %v", name, v, mc, exact)
			}
			eta := int64(g.N()) / 2
			if eta < 1 {
				eta = 1
			}
			exactT, err := ExactTruncatedIC(g, []int32{v}, eta)
			if err != nil {
				t.Fatal(err)
			}
			mcT := MCTruncated(g, diffusion.IC, []int32{v}, nil, eta, 20000, r)
			if math.Abs(mcT-exactT) > 0.08*math.Max(1, exactT) {
				t.Errorf("%s v=%d η=%d: MC truncated %v vs exact %v", name, v, eta, mcT, exactT)
			}
		}
	}
}

// TestMonteCarloMatchesExactLT does the same under the linear threshold
// model. The figure fixtures' weights satisfy the LT constraint except
// figure2 (weights into v4 sum to 2), which is excluded.
func TestMonteCarloMatchesExactLT(t *testing.T) {
	r := rng.New(11)
	graphs := fixtureGraphs()
	delete(graphs, "figure2") // weights into v4 sum to 2
	delete(graphs, "figure1") // weights into v5 sum to 1.6
	for name, g := range graphs {
		if err := diffusion.ValidateLT(g); err != nil {
			t.Fatalf("%s: fixture violates LT constraint: %v", name, err)
		}
		for v := int32(0); v < g.N(); v += 2 {
			exact, err := ExactSpreadLT(g, []int32{v})
			if err != nil {
				t.Fatal(err)
			}
			mc := MCSpread(g, diffusion.LT, []int32{v}, nil, 20000, r)
			if math.Abs(mc-exact) > 0.08*math.Max(1, exact) {
				t.Errorf("%s v=%d: MC LT spread %v vs exact %v", name, v, mc, exact)
			}
		}
	}
}

// TestExactICRejectsLargeGraphs guards the enumeration cut-off.
func TestExactICRejectsLargeGraphs(t *testing.T) {
	g := gen.Star(30, 0.5) // 29 edges > maxExactEdges
	if _, err := ExactSpreadIC(g, []int32{0}); err == nil {
		t.Fatal("want error for graphs beyond the enumeration limit")
	}
}

// TestStarLineArithmetic checks closed-form spreads: a star's expected
// spread from the center is 1 + (n−1)p; a line's is Σ p^i.
func TestStarLineArithmetic(t *testing.T) {
	g := gen.Star(6, 0.4)
	got, err := ExactSpreadIC(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 5*0.4
	if math.Abs(got-want) > 1e-6 { // edge probabilities are stored as float32
		t.Errorf("star: E[I(center)] = %v, want %v", got, want)
	}

	l := gen.Line(5, 0.7)
	got, err = ExactSpreadIC(l, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	want = 1 + 0.7 + 0.49 + 0.343 + 0.2401
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("line: E[I(head)] = %v, want %v", got, want)
	}
}
