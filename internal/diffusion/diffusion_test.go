package diffusion

import (
	"math"
	"testing"
	"testing/quick"

	"asti/internal/bitset"
	"asti/internal/gen"
	"asti/internal/graph"
	"asti/internal/rng"
)

func deterministicLine(t *testing.T) *graph.Graph {
	t.Helper()
	return gen.Line(5, 1.0)
}

func TestModelString(t *testing.T) {
	if IC.String() != "IC" || LT.String() != "LT" {
		t.Fatal("model names wrong")
	}
	if Model(9).Valid() {
		t.Fatal("Model(9) claims valid")
	}
	if Model(9).String() == "" {
		t.Fatal("unknown model must still print")
	}
}

func TestValidateLT(t *testing.T) {
	if err := ValidateLT(gen.Line(4, 0.9)); err != nil {
		t.Fatalf("line(0.9) must satisfy LT: %v", err)
	}
	if err := ValidateLT(gen.Figure2Graph()); err == nil {
		t.Fatal("figure2 violates LT (weights into v4 sum to 2) but passed")
	}
}

// TestDeterministicRealization: with all probabilities 1, both models make
// every edge live, so spread is full reachability.
func TestDeterministicRealization(t *testing.T) {
	g := deterministicLine(t)
	for _, model := range []Model{IC, LT} {
		φ := SampleRealization(g, model, rng.New(1))
		got := φ.Spread([]int32{0}, nil)
		if len(got) != 5 {
			t.Errorf("%v: spread %d, want 5", model, len(got))
		}
		if n := φ.SpreadSize([]int32{4}, nil); n != 1 {
			t.Errorf("%v: spread from tail = %d, want 1", model, n)
		}
	}
}

// TestRealizationConsistency: repeated Spread calls on one realization
// return identical results (the whole point of fixing a world).
func TestRealizationConsistency(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Name: "t", N: 200, AvgDeg: 2, UniformMix: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []Model{IC, LT} {
		φ := SampleRealization(g, model, rng.New(9))
		a := φ.Spread([]int32{3, 17}, nil)
		b := φ.Spread([]int32{3, 17}, nil)
		if len(a) != len(b) {
			t.Fatalf("%v: spread varied across calls: %d vs %d", model, len(a), len(b))
		}
	}
}

// TestSpreadMonotoneInSeeds (property): adding seeds never shrinks the
// realized spread on a fixed realization.
func TestSpreadMonotoneInSeeds(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Name: "t", N: 150, AvgDeg: 2, UniformMix: 0.3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	φ := SampleRealization(g, IC, rng.New(10))
	r := rng.New(11)
	if err := quick.Check(func(_ uint8) bool {
		a := r.Int31n(g.N())
		b := r.Int31n(g.N())
		small := φ.SpreadSize([]int32{a}, nil)
		big := φ.SpreadSize([]int32{a, b}, nil)
		return big >= small
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSpreadRespectsActiveMask: masked nodes are never activated and
// masked seeds are skipped.
func TestSpreadRespectsActiveMask(t *testing.T) {
	g := deterministicLine(t)
	φ := SampleRealization(g, IC, rng.New(2))
	active := bitset.New(5)
	active.Set(2) // break the line at node 2
	out := φ.Spread([]int32{0}, active)
	if len(out) != 2 { // 0 and 1 only
		t.Fatalf("masked spread = %v, want [0 1]", out)
	}
	for _, v := range out {
		if active.Get(v) {
			t.Fatalf("activated masked node %d", v)
		}
	}
	if n := φ.SpreadSize([]int32{2}, active); n != 0 {
		t.Fatalf("masked seed produced spread %d", n)
	}
}

// TestResidualDecomposition: spreading S1 then S2 on the residual equals
// spreading S1 ∪ S2 at once — the identity that makes adaptive observation
// sound (Eq. 3 of the paper at the realization level).
func TestResidualDecomposition(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Name: "t", N: 300, AvgDeg: 2.2, UniformMix: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(13)
	for _, model := range []Model{IC, LT} {
		φ := SampleRealization(g, model, rng.New(21))
		for trial := 0; trial < 50; trial++ {
			s1 := r.Int31n(g.N())
			s2 := r.Int31n(g.N())
			joint := φ.SpreadSize([]int32{s1, s2}, nil)

			active := bitset.New(int(g.N()))
			first := φ.Spread([]int32{s1}, nil)
			for _, v := range first {
				active.Set(v)
			}
			second := φ.Spread([]int32{s2}, active)
			if len(first)+len(second) != joint {
				t.Fatalf("%v: sequential %d+%d != joint %d (seeds %d,%d)",
					model, len(first), len(second), joint, s1, s2)
			}
		}
	}
}

// TestSimulatorMatchesRealizationDistribution: the mean spread over many
// fresh Simulator runs must match the mean over many sampled realizations.
func TestSimulatorMatchesRealizationDistribution(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Name: "t", N: 120, AvgDeg: 2, UniformMix: 0.3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int32{0, 5}
	const runs = 4000
	for _, model := range []Model{IC, LT} {
		r := rng.New(33)
		sim := NewSimulator(g, model)
		var mcMean float64
		for i := 0; i < runs; i++ {
			mcMean += float64(sim.Spread(seeds, nil, r))
		}
		mcMean /= runs

		var realMean float64
		for i := 0; i < runs; i++ {
			φ := SampleRealization(g, model, r)
			realMean += float64(φ.SpreadSize(seeds, nil))
		}
		realMean /= runs
		if math.Abs(mcMean-realMean) > 0.08*math.Max(1, realMean) {
			t.Errorf("%v: simulator mean %v vs realization mean %v", model, mcMean, realMean)
		}
	}
}

// TestSimulatorScratchIsolation: back-to-back runs do not leak visited
// state (the epoch/sparse-clear machinery).
func TestSimulatorScratchIsolation(t *testing.T) {
	g := deterministicLine(t)
	sim := NewSimulator(g, IC)
	r := rng.New(3)
	for i := 0; i < 100; i++ {
		if got := sim.Spread([]int32{0}, nil, r); got != 5 {
			t.Fatalf("run %d: spread %d, want 5", i, got)
		}
	}
}

// TestLTSingleParentInvariant: in an LT realization every node has at most
// one chosen in-edge and it is a real in-neighbor.
func TestLTSingleParentInvariant(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Name: "t", N: 100, AvgDeg: 2, UniformMix: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	φ := SampleRealization(g, LT, rng.New(44))
	for v := int32(0); v < g.N(); v++ {
		ci := φ.ChosenIn(v)
		if ci < 0 {
			continue
		}
		if int(ci) >= len(g.InNeighbors(v)) {
			t.Fatalf("node %d chose out-of-range in-edge %d", v, ci)
		}
	}
}

// TestICSeedDedup: duplicate seeds count once.
func TestICSeedDedup(t *testing.T) {
	g := deterministicLine(t)
	φ := SampleRealization(g, IC, rng.New(1))
	if n := φ.SpreadSize([]int32{0, 0, 0}, nil); n != 5 {
		t.Fatalf("dup seeds spread %d, want 5", n)
	}
}
