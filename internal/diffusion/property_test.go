package diffusion

import (
	"testing"
	"testing/quick"

	"asti/internal/gen"
	"asti/internal/rng"
)

// TestRealizedSpreadSubmodular pins the per-realization submodularity of
// the spread function: for S ⊆ T and any v, the marginal of v on top of
// S is at least its marginal on top of T (coverage functions are
// submodular world by world — the property every greedy guarantee in the
// paper leans on).
func TestRealizedSpreadSubmodular(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi("er", 60, 4, true, seed)
		if err != nil {
			return false
		}
		g.ApplyWeightedCascade()
		r := rng.New(seed + 1)
		for _, model := range []Model{IC, LT} {
			φ := SampleRealization(g, model, r)
			// Random nested sets S ⊂ T and probe v ∉ T.
			perm := r.Perm(int(g.N()))
			sizeS := 1 + r.Intn(5)
			sizeT := sizeS + 1 + r.Intn(5)
			S := make([]int32, 0, sizeS)
			T := make([]int32, 0, sizeT)
			for i := 0; i < sizeT; i++ {
				T = append(T, int32(perm[i]))
				if i < sizeS {
					S = append(S, int32(perm[i]))
				}
			}
			v := int32(perm[sizeT])

			spread := func(xs []int32) int {
				return φ.SpreadSize(xs, nil)
			}
			margS := spread(append(S[:len(S):len(S)], v)) - spread(S)
			margT := spread(append(T[:len(T):len(T)], v)) - spread(T)
			if margS < margT {
				t.Logf("seed %d model %v: marginal(S)=%d < marginal(T)=%d", seed, model, margS, margT)
				return false
			}
			// Monotonicity for free: T ⊇ S ⇒ spread(T) ≥ spread(S).
			if spread(T) < spread(S) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRealizationSpreadUnionBound checks subadditivity on realizations:
// I_φ(S ∪ T) ≤ I_φ(S) + I_φ(T).
func TestRealizationSpreadUnionBound(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi("er", 50, 3, true, seed)
		if err != nil {
			return false
		}
		g.ApplyWeightedCascade()
		r := rng.New(seed + 3)
		φ := SampleRealization(g, IC, r)
		perm := r.Perm(int(g.N()))
		S := []int32{int32(perm[0]), int32(perm[1])}
		T := []int32{int32(perm[2]), int32(perm[3]), int32(perm[4])}
		union := append(append([]int32{}, S...), T...)
		return φ.SpreadSize(union, nil) <= φ.SpreadSize(S, nil)+φ.SpreadSize(T, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
