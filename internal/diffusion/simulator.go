package diffusion

import (
	"asti/internal/bitset"
	"asti/internal/graph"
	"asti/internal/rng"
)

// Simulator runs forward influence propagation with fresh randomness on
// each call, reusing scratch buffers across runs. It is the Monte-Carlo
// workhorse behind spread estimation; one Simulator serves one goroutine.
//
// Fresh randomness differs from a Realization: every Spread call is an
// independent sample of the live-edge process, conditioned on the residual
// graph (nodes in the active mask are treated as removed, matching the
// induced-subgraph semantics of the paper's G_i).
type Simulator struct {
	g     *graph.Graph
	model Model

	visited *bitset.Set
	queue   []int32
	touched []int32 // nodes whose visited bit must be cleared after a run

	// LT-only per-run state: mass of failed contacts per node, versioned by
	// epoch so runs don't pay an O(n) reset.
	failedMass []float64
	massEpoch  []int64
	epoch      int64
}

// NewSimulator returns a Simulator for g under the given model.
func NewSimulator(g *graph.Graph, model Model) *Simulator {
	if !model.Valid() {
		panic("diffusion: unknown model")
	}
	return &Simulator{
		g:       g,
		model:   model,
		visited: bitset.New(int(g.N())),
	}
}

// Spread runs one fresh propagation from seeds restricted to nodes not in
// active (nil = whole graph) and returns the number of newly activated
// nodes, including the seeds that were inactive.
//
// IC flips each examined out-edge once (every node is dequeued at most
// once, so the flips are consistent within a run). LT samples each touched
// node's single live in-edge on first contact; a choice landing on an
// active-masked or non-frontier node simply fails, which is exactly the
// residual live-edge distribution.
func (s *Simulator) Spread(seeds []int32, active *bitset.Set, r *rng.Source) int {
	count := 0
	s.epoch++
	s.queue = s.queue[:0]
	for _, seed := range seeds {
		if active != nil && active.Get(seed) {
			continue
		}
		if !s.visited.TestAndSet(seed) {
			s.queue = append(s.queue, seed)
			s.touched = append(s.touched, seed)
			count++
		}
	}
	for qi := 0; qi < len(s.queue); qi++ {
		u := s.queue[qi]
		adj := s.g.OutNeighbors(u)
		probs := s.g.OutProbs(u)
		for i, v := range adj {
			if s.visited.Get(v) || (active != nil && active.Get(v)) {
				continue
			}
			var live bool
			switch s.model {
			case IC:
				live = r.Bernoulli(float64(probs[i]))
			default: // LT
				// v's single live in-edge, sampled on first contact. If it
				// is not ⟨u,v⟩ the contact fails now; if the chosen source
				// activates later, the edgeLive check there succeeds. To
				// keep per-run state cheap we resample per contact — this
				// is the "triggering set resampling" shortcut; see note.
				live = s.contactLT(u, v, r)
			}
			if live {
				s.visited.Set(v)
				s.queue = append(s.queue, v)
				s.touched = append(s.touched, v)
				count++
			}
		}
	}
	// Sparse cleanup: clear only the bits we set.
	s.visited.ClearAll(s.touched)
	s.touched = s.touched[:0]
	return count
}

// contactLT decides whether the LT contact u→v succeeds. The classical LT
// process is equivalent to each node drawing a threshold λ_v ~ U[0,1] and
// activating once the weight of active in-neighbors reaches λ_v. Because
// each in-neighbor of v contacts v at most once and the weights sum to at
// most 1, the sequential view "the contact from u succeeds with probability
// p(u,v) / (1 - weight of in-neighbors that already failed)" reproduces the
// exact distribution; we implement the standard simpler equivalent of
// flipping p(u,v)/(remaining mass) per contact, tracking failed mass per
// node within a run.
func (s *Simulator) contactLT(u, v int32, r *rng.Source) bool {
	// Lazily allocated failed-mass tracking.
	if s.failedMass == nil {
		s.failedMass = make([]float64, s.g.N())
		s.massEpoch = make([]int64, s.g.N())
	}
	if s.massEpoch[v] != s.epoch {
		s.massEpoch[v] = s.epoch
		s.failedMass[v] = 0
	}
	p := s.edgeProbInto(u, v)
	rem := 1 - s.failedMass[v]
	if rem <= 0 {
		return false
	}
	if r.Bernoulli(p / rem) {
		return true
	}
	s.failedMass[v] += p
	return false
}

// edgeProbInto returns p(u,v) by scanning v's in-adjacency. In-degrees in
// our workloads are modest and each (u,v) pair is queried at most once per
// run, so a scan beats maintaining an extra index.
func (s *Simulator) edgeProbInto(u, v int32) float64 {
	in := s.g.InNeighbors(v)
	probs := s.g.InProbs(v)
	for i, w := range in {
		if w == u {
			return float64(probs[i])
		}
	}
	return 0
}
