package diffusion

import (
	"math"
	"testing"

	"asti/internal/bitset"
	"asti/internal/gen"
	"asti/internal/graph"
	"asti/internal/rng"
)

// TestSimulatorMatchesRealizationOnResidual: the fresh-randomness
// Simulator restricted to a residual mask must match, in distribution,
// realizations of the induced subgraph — the property TRIM's estimator
// semantics (Corollary 3.4) rest on. Checked by comparing means under
// both models.
func TestSimulatorMatchesRealizationOnResidual(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Name: "t", N: 150, AvgDeg: 2.2, UniformMix: 0.3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Mask a fixed third of the nodes.
	active := bitset.New(int(g.N()))
	var seeds []int32
	for v := int32(0); v < g.N(); v++ {
		if v%3 == 0 {
			active.Set(v)
		}
	}
	for _, c := range []int32{1, 7, 13} {
		seeds = append(seeds, c)
	}

	const runs = 6000
	for _, model := range []Model{IC, LT} {
		r := rng.New(99)
		sim := NewSimulator(g, model)
		var simMean float64
		for i := 0; i < runs; i++ {
			simMean += float64(sim.Spread(seeds, active, r))
		}
		simMean /= runs

		var realMean float64
		for i := 0; i < runs; i++ {
			φ := SampleRealization(g, model, r)
			realMean += float64(φ.SpreadSize(seeds, active))
		}
		realMean /= runs
		if math.Abs(simMean-realMean) > 0.08*math.Max(1, realMean) {
			t.Errorf("%v residual: simulator mean %v vs realization mean %v", model, simMean, realMean)
		}
	}
}

// TestLTContactMathExact: on a two-parent node, the sequential contact
// simulation must activate the child with probability p1+p2 when both
// parents are active (each node has ONE live in-edge in LT).
func TestLTContactMathExact(t *testing.T) {
	// u0 → w ← u1, p = 0.3 each. Seeding both parents activates w iff
	// w's chosen in-edge is u0 or u1: probability 0.6 exactly.
	gb := graph.NewBuilder(3)
	gb.AddEdge(0, 2, 0.3)
	gb.AddEdge(1, 2, 0.3)
	g := gb.MustBuild("two-parent", true)
	φcount := 0
	const runs = 200000
	r := rng.New(5)
	sim := NewSimulator(g, LT)
	for i := 0; i < runs; i++ {
		if sim.Spread([]int32{0, 1}, nil, r) == 3 {
			φcount++
		}
	}
	got := float64(φcount) / runs
	if math.Abs(got-0.6) > 0.01 {
		t.Fatalf("LT two-parent activation rate %v, want 0.6", got)
	}
}
