// Package diffusion implements the influence-propagation models from the
// paper: independent cascade (IC) and linear threshold (LT), both in their
// live-edge formulation (Kempe et al. 2003; paper §2.1).
//
// Two distinct sources of randomness appear in adaptive seed minimization
// and this package keeps them strictly separate:
//
//   - Realization: ONE fully materialized world φ — every edge's
//     live/blocked status (IC) or every node's chosen in-edge (LT) is
//     fixed. The adaptive policy is executed against a Realization and
//     observes reachability in it; the paper evaluates every algorithm on
//     the same 20 pre-sampled realizations (§6).
//   - Simulator: fresh coin flips per run, used for Monte-Carlo estimation
//     of expected (truncated) spread.
package diffusion

import (
	"fmt"

	"asti/internal/bitset"
	"asti/internal/graph"
	"asti/internal/rng"
)

// Model selects the propagation model.
type Model int

const (
	// IC is the independent cascade model: each edge ⟨u,v⟩ is live
	// independently with probability p(u,v).
	IC Model = iota
	// LT is the linear threshold model in live-edge form: each node picks
	// at most one incoming edge, edge ⟨u,v⟩ with probability p(u,v)
	// (weights into v must sum to at most 1).
	LT
)

// String returns "IC" or "LT".
func (m Model) String() string {
	switch m {
	case IC:
		return "IC"
	case LT:
		return "LT"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Valid reports whether m is a known model.
func (m Model) Valid() bool { return m == IC || m == LT }

// ValidateLT checks the LT weight constraint: for every node the incoming
// probabilities must sum to at most 1 (+tiny float tolerance).
func ValidateLT(g *graph.Graph) error {
	const tol = 1e-6
	for v := int32(0); v < g.N(); v++ {
		var sum float64
		for _, p := range g.InProbs(v) {
			sum += float64(p)
		}
		if sum > 1+tol {
			return fmt.Errorf("diffusion: LT weights into node %d sum to %v > 1", v, sum)
		}
	}
	return nil
}

// Realization is one fully materialized world φ of the probabilistic graph:
// a sample from the live-edge distribution of the model. It is immutable
// after sampling and safe for concurrent reads.
type Realization struct {
	g     *graph.Graph
	model Model

	// IC: liveOut[outEdgeID] — whether the directed edge is live.
	liveOut *bitset.Set
	// LT: chosenIn[v] — local index into v's in-adjacency of the single
	// live incoming edge, or -1 when v picked none.
	chosenIn []int32
}

// SampleRealization draws one world φ from the live-edge distribution.
func SampleRealization(g *graph.Graph, model Model, r *rng.Source) *Realization {
	φ := &Realization{g: g, model: model}
	switch model {
	case IC:
		φ.liveOut = bitset.New(int(g.M()))
		var eid int64
		for u := int32(0); u < g.N(); u++ {
			probs := g.OutProbs(u)
			for i := range probs {
				if r.Bernoulli(float64(probs[i])) {
					φ.liveOut.Set(int32(eid + int64(i)))
				}
			}
			eid += int64(len(probs))
		}
	case LT:
		φ.chosenIn = make([]int32, g.N())
		for v := int32(0); v < g.N(); v++ {
			φ.chosenIn[v] = sampleChosenIn(g, v, r)
		}
	default:
		panic("diffusion: unknown model")
	}
	return φ
}

// sampleChosenIn picks at most one incoming edge of v: local in-edge i with
// probability p_i, none with probability 1-Σp_i. Returns the local index
// or -1.
func sampleChosenIn(g *graph.Graph, v int32, r *rng.Source) int32 {
	probs := g.InProbs(v)
	if len(probs) == 0 {
		return -1
	}
	x := r.Float64()
	var acc float64
	for i, p := range probs {
		acc += float64(p)
		if x < acc {
			return int32(i)
		}
	}
	return -1
}

// Graph returns the graph the realization was sampled from.
func (φ *Realization) Graph() *graph.Graph { return φ.g }

// Model returns the propagation model of the realization.
func (φ *Realization) Model() Model { return φ.model }

// LiveOut reports whether the IC out-edge with dense id eid is live.
// Panics for LT realizations.
func (φ *Realization) LiveOut(eid int64) bool { return φ.liveOut.Get(int32(eid)) }

// ChosenIn returns the local in-edge index chosen by v (LT), or -1.
// Panics for IC realizations.
func (φ *Realization) ChosenIn(v int32) int32 { return φ.chosenIn[v] }

// edgeLive reports whether u activates its out-neighbor v (at local
// out-index i of u) in this world.
func (φ *Realization) edgeLive(u int32, i int, v int32) bool {
	switch φ.model {
	case IC:
		return φ.liveOut.Get(int32(φ.g.OutOffset(u) + int64(i)))
	default: // LT
		ci := φ.chosenIn[v]
		return ci >= 0 && φ.g.InNeighbors(v)[ci] == u
	}
}

// Spread performs the forward propagation from seeds in this world,
// restricted to nodes NOT set in active (the residual graph); a nil active
// means the whole graph. It returns the newly activated nodes (including
// the seeds themselves, excluding any seed already active). The active set
// is not modified; callers commit the observation explicitly.
func (φ *Realization) Spread(seeds []int32, active *bitset.Set) []int32 {
	visited := bitset.New(int(φ.g.N()))
	var out, queue []int32
	for _, s := range seeds {
		if active != nil && active.Get(s) {
			continue
		}
		if !visited.TestAndSet(s) {
			queue = append(queue, s)
			out = append(out, s)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		adj := φ.g.OutNeighbors(u)
		for i, v := range adj {
			if visited.Get(v) || (active != nil && active.Get(v)) {
				continue
			}
			if φ.edgeLive(u, i, v) {
				visited.Set(v)
				queue = append(queue, v)
				out = append(out, v)
			}
		}
	}
	return out
}

// SpreadSize returns len(Spread(seeds, active)) without retaining the list.
func (φ *Realization) SpreadSize(seeds []int32, active *bitset.Set) int {
	return len(φ.Spread(seeds, active))
}
