package stats

import (
	"math"
	"testing"
	"testing/quick"

	"asti/internal/rng"
)

// TestBoundsSandwichEmpirical: for a binomial coverage count, the Lemma
// A.2 bounds must bracket the true mean with at least the nominal
// confidence. We check the failure rates empirically at a = ln(1/δ).
func TestBoundsSandwichEmpirical(t *testing.T) {
	r := rng.New(1)
	const (
		trials = 4000
		T      = 2000 // samples per trial
		p      = 0.05 // true per-sample coverage probability
	)
	a := math.Log(100.0) // δ = 1%
	mean := p * T
	lowFail, highFail := 0, 0
	for i := 0; i < trials; i++ {
		count := 0
		for j := 0; j < T; j++ {
			if r.Bernoulli(p) {
				count++
			}
		}
		if CoverageLower(float64(count), a) > mean {
			lowFail++
		}
		if CoverageUpper(float64(count), a) < mean {
			highFail++
		}
	}
	// Allow 3x the nominal δ to keep the test stable.
	if maxFail := int(3 * 0.01 * trials); lowFail > maxFail || highFail > maxFail {
		t.Fatalf("bound failures: lower %d, upper %d of %d (max %d)",
			lowFail, highFail, trials, maxFail)
	}
}

// TestBoundsOrdering (property): 0 ≤ Λˡ ≤ count ≤ Λᵘ for any count, a ≥ 0.
func TestBoundsOrdering(t *testing.T) {
	if err := quick.Check(func(rawCount, rawA uint16) bool {
		count := float64(rawCount)
		a := float64(rawA%1000) + 0.1
		lo := CoverageLower(count, a)
		hi := CoverageUpper(count, a)
		return lo >= 0 && lo <= count+1e-9 && hi >= count-1e-9
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestBoundsTightenWithCount: the relative gap shrinks as counts grow.
func TestBoundsTightenWithCount(t *testing.T) {
	a := 10.0
	prevGap := math.Inf(1)
	for _, count := range []float64{10, 100, 1000, 10000} {
		gap := (CoverageUpper(count, a) - CoverageLower(count, a)) / count
		if gap >= prevGap {
			t.Fatalf("relative gap did not shrink at count %v: %v >= %v", count, gap, prevGap)
		}
		prevGap = gap
	}
}

func TestCoverageLowerClamped(t *testing.T) {
	if lb := CoverageLower(0, 50); lb != 0 {
		t.Fatalf("lower bound of zero count = %v, want 0", lb)
	}
	if lb := CoverageLower(1, 1000); lb != 0 {
		t.Fatalf("tiny count with huge a = %v, want clamp to 0", lb)
	}
}

func TestLogChoose(t *testing.T) {
	cases := []struct {
		n, k int64
		want float64
	}{
		{5, 0, 0},
		{5, 5, 0},
		{5, 1, math.Log(5)},
		{5, 2, math.Log(10)},
		{52, 5, math.Log(2598960)},
	}
	for _, c := range cases {
		if got := LogChoose(c.n, c.k); math.Abs(got-c.want) > 1e-9*math.Max(1, math.Abs(c.want)) {
			t.Errorf("LogChoose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogChoose(3, 5), -1) || !math.IsInf(LogChoose(3, -1), -1) {
		t.Error("out-of-range k must yield -Inf")
	}
}

// TestLogChooseSymmetry (property): C(n,k) = C(n,n-k).
func TestLogChooseSymmetry(t *testing.T) {
	if err := quick.Check(func(rawN, rawK uint8) bool {
		n := int64(rawN%60) + 1
		k := int64(rawK) % (n + 1)
		return math.Abs(LogChoose(n, k)-LogChoose(n, n-k)) < 1e-9
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRhoB(t *testing.T) {
	if RhoB(1) != 1 {
		t.Fatalf("ρ_1 = %v", RhoB(1))
	}
	if got := RhoB(2); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("ρ_2 = %v, want 0.75", got)
	}
	// Monotone decreasing toward 1 - 1/e.
	limit := 1 - 1/math.E
	prev := RhoB(1)
	for b := 2; b <= 64; b *= 2 {
		cur := RhoB(b)
		if cur >= prev || cur <= limit {
			t.Fatalf("ρ_%d = %v not in (1-1/e, ρ_%d)", b, cur, b/2)
		}
		prev = cur
	}
}

func TestSummaryStats(t *testing.T) {
	xs := []float64{4, 2, 8, 6}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %v", m)
	}
	if s := Stddev(xs); math.Abs(s-math.Sqrt(20.0/3)) > 1e-12 {
		t.Fatalf("stddev %v", s)
	}
	if q := Quantile(xs, 0.5); q != 5 {
		t.Fatalf("median %v", q)
	}
	if q := Quantile(xs, 0); q != 2 {
		t.Fatalf("q0 %v", q)
	}
	if q := Quantile(xs, 1); q != 8 {
		t.Fatalf("q1 %v", q)
	}
	min, max := MinMax(xs)
	if min != 2 || max != 8 {
		t.Fatalf("minmax %v %v", min, max)
	}
	// Empty-input conventions.
	if Mean(nil) != 0 || Stddev(nil) != 0 || Quantile(nil, 0.5) != 0 {
		t.Fatal("empty-input conventions broken")
	}
	if Stddev([]float64{3}) != 0 {
		t.Fatal("single-element stddev must be 0")
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Fatal("empty MinMax")
	}
}

// TestQuantileSorted (property): quantile is monotone in q and within
// [min, max].
func TestQuantileSorted(t *testing.T) {
	r := rng.New(2)
	if err := quick.Check(func(_ uint8) bool {
		n := r.Intn(20) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		min, max := MinMax(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 || v < min-1e-9 || v > max+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
