package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"asti/internal/rng"
)

// BootstrapCI estimates a two-sided percentile confidence interval for
// the mean of xs by nonparametric bootstrap. level is the coverage (e.g.
// 0.95); resamples controls the bootstrap replicate count.
func BootstrapCI(xs []float64, level float64, resamples int, r *rng.Source) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, errors.New("stats: bootstrap of empty sample")
	}
	if level <= 0 || level >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence level %v outside (0,1)", level)
	}
	if resamples < 10 {
		return 0, 0, fmt.Errorf("stats: %d resamples too few (need ≥ 10)", resamples)
	}
	if r == nil {
		return 0, 0, errors.New("stats: nil rng")
	}
	means := make([]float64, resamples)
	n := len(xs)
	for b := range means {
		var s float64
		for i := 0; i < n; i++ {
			s += xs[r.Intn(n)]
		}
		means[b] = s / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha), nil
}

// PairedPermutationTest tests whether paired samples a and b (same worlds,
// two policies — the harness's evaluation design) have different means.
// It returns the two-sided p-value of the sign-flip permutation test on
// the paired differences: exact in distribution as permutations → ∞, and
// valid without normality assumptions. permutations controls the Monte-
// Carlo resolution (the returned p is never below 1/(permutations+1)).
func PairedPermutationTest(a, b []float64, permutations int, r *rng.Source) (p float64, meanDiff float64, err error) {
	if len(a) != len(b) {
		return 0, 0, fmt.Errorf("stats: paired samples of different lengths %d and %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, 0, errors.New("stats: empty paired samples")
	}
	if permutations < 10 {
		return 0, 0, fmt.Errorf("stats: %d permutations too few (need ≥ 10)", permutations)
	}
	if r == nil {
		return 0, 0, errors.New("stats: nil rng")
	}
	diffs := make([]float64, len(a))
	var obs float64
	for i := range a {
		diffs[i] = a[i] - b[i]
		obs += diffs[i]
	}
	obs /= float64(len(a))
	absObs := math.Abs(obs)
	extreme := 1 // add-one smoothing: the identity permutation
	for p := 0; p < permutations; p++ {
		var s float64
		for _, d := range diffs {
			if r.Bernoulli(0.5) {
				s += d
			} else {
				s -= d
			}
		}
		if math.Abs(s/float64(len(a))) >= absObs-1e-15 {
			extreme++
		}
	}
	return float64(extreme) / float64(permutations+1), obs, nil
}

// WilcoxonSignedRank computes the Wilcoxon signed-rank statistic W and
// its normal-approximation two-sided p-value for paired samples. Zero
// differences are dropped (Wilcoxon's convention); ties share midranks.
// The normal approximation is adequate for n ≥ ~10; below that prefer
// PairedPermutationTest.
func WilcoxonSignedRank(a, b []float64) (w float64, p float64, err error) {
	if len(a) != len(b) {
		return 0, 0, fmt.Errorf("stats: paired samples of different lengths %d and %d", len(a), len(b))
	}
	type d struct {
		abs  float64
		sign float64
	}
	var ds []d
	for i := range a {
		diff := a[i] - b[i]
		if diff == 0 {
			continue
		}
		s := 1.0
		if diff < 0 {
			s = -1
		}
		ds = append(ds, d{math.Abs(diff), s})
	}
	n := len(ds)
	if n == 0 {
		return 0, 1, nil // all pairs tie: no evidence of difference
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].abs < ds[j].abs })
	// Midranks for ties.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && ds[j].abs == ds[i].abs {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for t := i; t < j; t++ {
			ranks[t] = mid
		}
		i = j
	}
	for i, dd := range ds {
		if dd.sign > 0 {
			w += ranks[i]
		}
	}
	mean := float64(n*(n+1)) / 4
	sd := math.Sqrt(float64(n*(n+1)*(2*n+1)) / 24)
	if sd == 0 {
		return w, 1, nil
	}
	z := (w - mean) / sd
	p = 2 * (1 - normalCDF(math.Abs(z)))
	if p > 1 {
		p = 1
	}
	return w, p, nil
}

func normalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// Median returns the sample median.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }
