// Package stats provides the martingale concentration bounds used by the
// TRIM stopping rule (paper Appendix A, Lemma A.2) and small summary
// statistics shared by the experiment harness.
package stats

import (
	"math"
	"sort"
)

// CoverageLower is the high-probability lower bound on the expected
// coverage E[Λ_R] given an observed coverage count and confidence
// parameter a = ln(1/failure-probability):
//
//	Λˡ = (√(count + 2a/9) − √(a/2))² − a/18
//
// (Lemma A.2, Eq. 18; TRIM Algorithm 2 Line 9.) The result is clamped to
// be non-negative: for tiny counts the algebraic form can dip below zero,
// where zero is the trivially valid bound.
func CoverageLower(count, a float64) float64 {
	v := math.Sqrt(count+2*a/9) - math.Sqrt(a/2)
	lb := v*v - a/18
	if lb < 0 {
		return 0
	}
	return lb
}

// CoverageUpper is the matching high-probability upper bound
//
//	Λᵘ = (√(count + a/2) + √(a/2))²
//
// (Lemma A.2, Eq. 19; TRIM Algorithm 2 Line 10.)
func CoverageUpper(count, a float64) float64 {
	v := math.Sqrt(count+a/2) + math.Sqrt(a/2)
	return v * v
}

// LogChoose returns ln C(n, k) computed in log-space via lgamma, used by
// TRIM-B's union bound over all size-b seed sets (Algorithm 3 Lines 2, 5).
func LogChoose(n, k int64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}

// RhoB returns ρ_b = 1 − (1 − 1/b)^b, the greedy max-coverage guarantee
// for batch size b (TRIM-B). ρ_1 = 1; ρ_b ↓ 1−1/e as b → ∞.
func RhoB(b int) float64 {
	if b <= 1 {
		return 1
	}
	return 1 - math.Pow(1-1/float64(b), float64(b))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 for n < 2).
func Stddev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation on the sorted copy. Empty input yields 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MinMax returns the minimum and maximum of xs (0,0 for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
