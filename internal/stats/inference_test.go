package stats

import (
	"math"
	"testing"
	"testing/quick"

	"asti/internal/rng"
)

func TestBootstrapCIValidation(t *testing.T) {
	r := rng.New(1)
	if _, _, err := BootstrapCI(nil, 0.95, 100, r); err == nil {
		t.Error("empty sample accepted")
	}
	if _, _, err := BootstrapCI([]float64{1}, 1.5, 100, r); err == nil {
		t.Error("level>1 accepted")
	}
	if _, _, err := BootstrapCI([]float64{1}, 0.95, 5, r); err == nil {
		t.Error("too few resamples accepted")
	}
	if _, _, err := BootstrapCI([]float64{1}, 0.95, 100, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestBootstrapCIBracketsMean(t *testing.T) {
	r := rng.New(7)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + r.Float64()*2 // mean 11
	}
	lo, hi, err := BootstrapCI(xs, 0.95, 2000, r)
	if err != nil {
		t.Fatal(err)
	}
	m := Mean(xs)
	if !(lo <= m && m <= hi) {
		t.Fatalf("CI [%v, %v] does not bracket sample mean %v", lo, hi, m)
	}
	if hi-lo <= 0 || hi-lo > 1 {
		t.Fatalf("CI width %v implausible for n=200, range 2", hi-lo)
	}
}

// Property: wider confidence level ⇒ wider interval.
func TestBootstrapCIMonotoneInLevel(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = r.Exp()
		}
		lo90, hi90, err := BootstrapCI(xs, 0.90, 800, rng.New(seed+1))
		if err != nil {
			return false
		}
		lo99, hi99, err := BootstrapCI(xs, 0.99, 800, rng.New(seed+1))
		if err != nil {
			return false
		}
		return hi99-lo99 >= hi90-lo90-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPairedPermutationDetectsShift(t *testing.T) {
	r := rng.New(3)
	n := 30
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := r.Float64() * 10
		a[i] = base + 2 + r.Float64()*0.2 // consistent +2 shift
		b[i] = base
	}
	p, diff, err := PairedPermutationTest(a, b, 2000, r)
	if err != nil {
		t.Fatal(err)
	}
	if diff < 1.5 {
		t.Fatalf("mean diff %v, want ≈ 2", diff)
	}
	if p > 0.01 {
		t.Fatalf("p = %v for a consistent shift, want < 0.01", p)
	}
}

func TestPairedPermutationNullIsFlat(t *testing.T) {
	// Under H0 (identical distributions) p should not be tiny.
	r := rng.New(5)
	n := 40
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = r.Float64()
		b[i] = r.Float64()
	}
	p, _, err := PairedPermutationTest(a, b, 2000, r)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.001 {
		t.Fatalf("p = %v under the null — test is anticonservative", p)
	}
}

func TestPairedPermutationValidation(t *testing.T) {
	r := rng.New(1)
	if _, _, err := PairedPermutationTest([]float64{1}, []float64{1, 2}, 100, r); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := PairedPermutationTest(nil, nil, 100, r); err == nil {
		t.Error("empty samples accepted")
	}
	if _, _, err := PairedPermutationTest([]float64{1}, []float64{2}, 5, r); err == nil {
		t.Error("too few permutations accepted")
	}
	if _, _, err := PairedPermutationTest([]float64{1}, []float64{2}, 100, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestWilcoxonDetectsShift(t *testing.T) {
	r := rng.New(11)
	n := 25
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := r.Float64() * 5
		a[i] = base + 1
		b[i] = base
	}
	w, p, err := WilcoxonSignedRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantW := float64(n*(n+1)) / 2 // all differences positive: W = full rank sum
	if math.Abs(w-wantW) > 1e-9 {
		t.Fatalf("W = %v, want %v", w, wantW)
	}
	if p > 0.001 {
		t.Fatalf("p = %v for uniform +1 shift", p)
	}
}

func TestWilcoxonAllTies(t *testing.T) {
	a := []float64{1, 2, 3}
	w, p, err := WilcoxonSignedRank(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0 || p != 1 {
		t.Fatalf("all-ties: (W=%v, p=%v), want (0, 1)", w, p)
	}
}

func TestWilcoxonMidranks(t *testing.T) {
	// |diffs| = {1,1,2}: ranks {1.5, 1.5, 3}. Signs +,−,+ ⇒ W = 1.5+3.
	a := []float64{2, 0, 5}
	b := []float64{1, 1, 3}
	w, _, err := WilcoxonSignedRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-4.5) > 1e-9 {
		t.Fatalf("W = %v, want 4.5 (midranks)", w)
	}
}

func TestWilcoxonValidation(t *testing.T) {
	if _, _, err := WilcoxonSignedRank([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("Median = %v, want 2", m)
	}
}
