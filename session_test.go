package asti_test

import (
	"errors"
	"fmt"
	"testing"

	"asti"
)

// ExampleOpenSession splits the adaptive loop of ExampleRunAdaptive at
// the observation boundary: the caller proposes batches through a
// Session and reports back the realized influence — here replayed from a
// sampled world, in production from real campaign telemetry.
func ExampleOpenSession() {
	b := asti.NewGraphBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	g, err := b.Build("chain", true)
	if err != nil {
		panic(err)
	}
	policy, err := asti.NewASTI(0.3)
	if err != nil {
		panic(err)
	}
	world := asti.SampleRealization(g, asti.IC, 1)

	s, err := asti.OpenSession(g, asti.IC, 3, policy, 2)
	if err != nil {
		panic(err)
	}
	defer s.Close()
	for {
		batch, err := s.NextBatch()
		if errors.Is(err, asti.ErrSessionDone) {
			break
		}
		if err != nil {
			panic(err)
		}
		prog, err := s.Observe(world.Spread(batch, nil))
		if err != nil {
			panic(err)
		}
		if prog.Done {
			break
		}
	}
	res := s.Result()
	fmt.Println("reached threshold:", res.ReachedEta)
	fmt.Println("seeds used:", len(res.Seeds))
	// Output:
	// reached threshold: true
	// seeds used: 1
}

// TestOpenSessionMatchesRunAdaptive checks the facade contract: a session
// fed a world's own observations reproduces RunAdaptive on that world.
func TestOpenSessionMatchesRunAdaptive(t *testing.T) {
	g, err := asti.GenerateDataset("synth-nethept", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	eta := int64(float64(g.N()) * 0.1)
	world := asti.SampleRealization(g, asti.IC, 17)

	runPolicy, err := asti.NewASTI(0.5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := asti.RunAdaptive(g, asti.IC, eta, runPolicy, world, 23)
	if err != nil {
		t.Fatal(err)
	}

	sessPolicy, err := asti.NewASTI(0.5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := asti.OpenSession(g, asti.IC, eta, sessPolicy, 23)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for {
		batch, err := s.NextBatch()
		if errors.Is(err, asti.ErrSessionDone) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		// Observe is lenient about already-active ids, so replaying the
		// whole-graph spread of each batch is a valid client.
		prog, err := s.Observe(world.Spread(batch, nil))
		if err != nil {
			t.Fatal(err)
		}
		if prog.Done {
			break
		}
	}
	got := s.Result()
	if fmt.Sprint(got.Seeds) != fmt.Sprint(want.Seeds) {
		t.Errorf("session seeds %v != RunAdaptive seeds %v", got.Seeds, want.Seeds)
	}
	if got.Spread != want.Spread {
		t.Errorf("session spread %d != RunAdaptive spread %d", got.Spread, want.Spread)
	}
}
