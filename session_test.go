package asti_test

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"asti"
)

// ExampleOpenSession splits the adaptive loop of ExampleRunAdaptive at
// the observation boundary: the caller proposes batches through a
// Session and reports back the realized influence — here replayed from a
// sampled world, in production from real campaign telemetry.
func ExampleOpenSession() {
	b := asti.NewGraphBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	g, err := b.Build("chain", true)
	if err != nil {
		panic(err)
	}
	policy, err := asti.NewASTI(0.3)
	if err != nil {
		panic(err)
	}
	world := asti.SampleRealization(g, asti.IC, 1)

	s, err := asti.OpenSession(g, asti.IC, 3, policy, 2)
	if err != nil {
		panic(err)
	}
	defer s.Close()
	for {
		batch, err := s.NextBatch()
		if errors.Is(err, asti.ErrSessionDone) {
			break
		}
		if err != nil {
			panic(err)
		}
		prog, err := s.Observe(world.Spread(batch, nil))
		if err != nil {
			panic(err)
		}
		if prog.Done {
			break
		}
	}
	res := s.Result()
	fmt.Println("reached threshold:", res.ReachedEta)
	fmt.Println("seeds used:", len(res.Seeds))
	// Output:
	// reached threshold: true
	// seeds used: 1
}

// ExampleWithJournalDir makes a session durable: its state transitions
// are write-ahead journaled, so after a crash (simulated here by simply
// abandoning the first manager) a fresh manager over the same directory
// recovers the session mid-campaign, and it proposes exactly what the
// uninterrupted session would have.
func ExampleWithJournalDir() {
	dir, err := os.MkdirTemp("", "asti-wal")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	reg := asti.NewSessionRegistry()
	b := asti.NewGraphBuilder(5)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 4, 1)
	g, err := b.Build("chain", true)
	if err != nil {
		panic(err)
	}
	if err := reg.RegisterGraph("chain", g); err != nil {
		panic(err)
	}

	// First process life: propose one batch, observe, then "crash".
	mgr := asti.NewSessionManager(reg, 0, asti.WithJournalDir(dir))
	s, err := mgr.Create(asti.SessionConfig{Dataset: "chain", Eta: 4, Seed: 2})
	if err != nil {
		panic(err)
	}
	batch, err := s.NextBatch()
	if err != nil {
		panic(err)
	}
	if _, err := s.Observe(batch); err != nil { // nobody relayed the message
		panic(err)
	}
	id := s.ID()

	// Second process life: recover from the journal and keep going.
	mgr2 := asti.NewSessionManager(reg, 0, asti.WithJournalDir(dir))
	rep, err := mgr2.Recover("")
	if err != nil {
		panic(err)
	}
	fmt.Println("recovered sessions:", rep.Recovered)
	resumed, err := mgr2.Session(id)
	if err != nil {
		panic(err)
	}
	st := resumed.Status()
	fmt.Println("resumed at round:", st.Round, "phase:", st.Phase, "durable:", st.Durable)
	if _, err := resumed.NextBatch(); err != nil {
		panic(err)
	}
	fmt.Println("round after resume:", resumed.Status().Round)
	// Output:
	// recovered sessions: 1
	// resumed at round: 1 phase: propose durable: true
	// round after resume: 2
}

// ExampleWithIdleTTL shows idle-session passivation: a durable session
// parked by the sweep (forced here with Passivate, so the example does
// not depend on timing) frees its engine and pool, and the next manager
// lookup reactivates it from the journal with identical state.
func ExampleWithIdleTTL() {
	dir, err := os.MkdirTemp("", "asti-wal")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	reg := asti.NewSessionRegistry()
	b := asti.NewGraphBuilder(5)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 4, 1)
	g, err := b.Build("chain", true)
	if err != nil {
		panic(err)
	}
	if err := reg.RegisterGraph("chain", g); err != nil {
		panic(err)
	}

	mgr := asti.NewSessionManager(reg, 0,
		asti.WithJournalDir(dir), asti.WithIdleTTL(time.Hour))
	defer mgr.CloseAll()
	s, err := mgr.Create(asti.SessionConfig{Dataset: "chain", Eta: 4, Seed: 2})
	if err != nil {
		panic(err)
	}
	batch, err := s.NextBatch()
	if err != nil {
		panic(err)
	}
	if _, err := s.Observe(batch); err != nil {
		panic(err)
	}
	id := s.ID()

	// The hourly sweep would do this on its own; force it for the example.
	if _, err := mgr.Passivate(id); err != nil {
		panic(err)
	}
	fmt.Println("passivated sessions:", mgr.Metrics().Passivated)

	// Any lookup transparently reactivates by replaying the journal.
	resumed, err := mgr.Session(id)
	if err != nil {
		panic(err)
	}
	st := resumed.Status()
	fmt.Println("resumed at round:", st.Round, "phase:", st.Phase, "passivations:", st.Passivations)
	if _, err := resumed.NextBatch(); err != nil {
		panic(err)
	}
	fmt.Println("round after resume:", resumed.Status().Round)
	// Output:
	// passivated sessions: 1
	// resumed at round: 1 phase: propose passivations: 1
	// round after resume: 2
}

// TestOpenSessionMatchesRunAdaptive checks the facade contract: a session
// fed a world's own observations reproduces RunAdaptive on that world.
func TestOpenSessionMatchesRunAdaptive(t *testing.T) {
	g, err := asti.GenerateDataset("synth-nethept", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	eta := int64(float64(g.N()) * 0.1)
	world := asti.SampleRealization(g, asti.IC, 17)

	runPolicy, err := asti.NewASTI(0.5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := asti.RunAdaptive(g, asti.IC, eta, runPolicy, world, 23)
	if err != nil {
		t.Fatal(err)
	}

	sessPolicy, err := asti.NewASTI(0.5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := asti.OpenSession(g, asti.IC, eta, sessPolicy, 23)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for {
		batch, err := s.NextBatch()
		if errors.Is(err, asti.ErrSessionDone) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		// Observe is lenient about already-active ids, so replaying the
		// whole-graph spread of each batch is a valid client.
		prog, err := s.Observe(world.Spread(batch, nil))
		if err != nil {
			t.Fatal(err)
		}
		if prog.Done {
			break
		}
	}
	got := s.Result()
	if fmt.Sprint(got.Seeds) != fmt.Sprint(want.Seeds) {
		t.Errorf("session seeds %v != RunAdaptive seeds %v", got.Seeds, want.Seeds)
	}
	if got.Spread != want.Spread {
		t.Errorf("session spread %d != RunAdaptive spread %d", got.Spread, want.Spread)
	}
}
