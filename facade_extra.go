package asti

import (
	"asti/internal/adaptive"
	"asti/internal/baselines"
	"asti/internal/centrality"
	"asti/internal/graph"
	"asti/internal/imm"
	"asti/internal/oracle"
	"asti/internal/rng"
	"asti/internal/sketch"
	"asti/internal/topics"
	"asti/internal/trim"
)

// NewPageRankPolicy returns the adaptive PageRank heuristic: seed down a
// one-time PageRank ranking, skipping already-influenced users. No
// approximation guarantee — the comparison floor for "static global
// importance".
func NewPageRankPolicy() Policy { return &baselines.PageRankPolicy{} }

// NewDegreeDiscountPolicy returns the adaptive degree-discount heuristic
// (Chen et al., KDD 2009), re-ranked on the residual graph each round.
// p is the uniform propagation probability the discount formula assumes.
func NewDegreeDiscountPolicy(p float64) Policy { return &baselines.DegreeDiscountPolicy{P: p} }

// NewKCorePolicy returns the adaptive k-core heuristic: seed by
// descending core number.
func NewKCorePolicy() Policy { return &baselines.KCorePolicy{} }

// NewASTIParallel returns the TRIM / TRIM-B policy with an explicit
// engine worker count; it is NewASTI/NewASTIBatch with
// WithWorkers(workers). Selections are byte-identical for every worker
// count (per-set seeding in the shared engine).
func NewASTIParallel(epsilon float64, batch, workers int) (Policy, error) {
	return trim.New(trim.Config{Epsilon: epsilon, Batch: batch, Truncated: true, Workers: workers, ReusePool: true})
}

// NewSketchPolicy returns the adaptive comparator built on bottom-k
// reachability sketches (Cohen et al., CIKM 2014): residual-aware but
// optimizing the untruncated spread.
func NewSketchPolicy() Policy { return &baselines.SketchPolicy{} }

// NewVaswaniPolicy returns the prior-art adaptive baseline of Vaswani and
// Lakshmanan (§2.4): greedy on the UNtruncated marginal spread with a
// sequential-sampling estimator that honours the paper's Eq. (7) accuracy
// band. relErr is the target relative error; smaller values reproduce the
// "prohibitive computation overhead" the paper criticizes.
func NewVaswaniPolicy(relErr float64) Policy { return &baselines.Vaswani{RelErr: relErr} }

// PageRank computes PageRank scores for g (damping 0.85).
func PageRank(g *Graph) ([]float64, error) {
	scores, _, err := centrality.PageRank(g, centrality.PageRankOptions{})
	return scores, err
}

// CoreNumbers computes every node's k-core number (total degree).
func CoreNumbers(g *Graph) ([]int32, error) { return centrality.KCore(g) }

// SketchInfluence estimates every node's expected spread at once with
// combined bottom-k reachability sketches (Cohen et al., CIKM 2014):
// `instances` live-edge worlds, sketch size k. One near-linear build
// answers all n queries — the whole-graph complement to the RR-set
// machinery (which targets argmax queries). Note the §3.2 caveat: this
// estimates the UNtruncated spread; only mRR-sets estimate the truncated
// objective ASM needs.
func SketchInfluence(g *Graph, model Model, instances, k int, seed uint64) ([]float64, error) {
	o, err := sketch.BuildOracle(g, model, sketch.Options{Instances: instances, K: k}, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return o.EstimateAll(), nil
}

// SaveGraphBinary writes g in the checksummed binary format (fast cache
// for large synthetic models; load with LoadGraphBinary). The text format
// of SaveGraph remains the interchange format.
func SaveGraphBinary(path string, g *Graph) error { return graph.SaveBinaryFile(path, g) }

// LoadGraphBinary reads a graph written by SaveGraphBinary.
func LoadGraphBinary(path string) (*Graph, error) { return graph.LoadBinaryFile(path) }

// IMMResult reports an IMM influence-maximization run.
type IMMResult = imm.Result

// MaximizeInfluenceIMM solves classical influence maximization with the
// IMM algorithm (Tang et al., SIGMOD 2015; the paper's reference [40]):
// a (1−1/e−ε)-approximate k-seed set with probability ≥ 1−1/n. Compare
// MaximizeInfluence, which uses OPIM-C and certifies its ratio a
// posteriori.
func MaximizeInfluenceIMM(g *Graph, model Model, k int, epsilon float64, seed uint64, opts ...Option) (*IMMResult, error) {
	o := applyOptions(opts)
	return imm.Select(g, model, k, imm.Options{Epsilon: epsilon, Workers: o.workers}, rng.New(seed))
}

// EvaluatePolicyParallel is EvaluatePolicy with worlds evaluated across
// `workers` goroutines; results are bit-identical to any worker count
// with the same seed (scheduling-independent seeding).
func EvaluatePolicyParallel(g *Graph, model Model, eta int64, factory PolicyFactory, worlds, workers int, seed uint64) (*Summary, error) {
	return adaptive.EvaluateParallel(g, model, eta, factory, worlds, workers, seed)
}

// TopicItem is one advertised product for PlanTopicCampaigns: a topic
// mixture plus its required reach fraction.
type TopicItem = topics.Item

// TopicCampaignPlan aggregates the per-item adaptive campaigns.
type TopicCampaignPlan = topics.CampaignPlan

// PlanTopicCampaigns runs adaptive seed minimization for every item on
// its blended influence graph (the paper's topic-aware extension applied
// to a product portfolio): per item, blend the topic model with the
// item's mixture, then seed adaptively until the item's threshold is
// met.
func PlanTopicCampaigns(m *TopicModel, items []TopicItem, model Model, epsilon float64, seed uint64) (*TopicCampaignPlan, error) {
	return topics.PlanCampaigns(m, items, model, epsilon, seed)
}

// AdaptivityGap holds the exact optima of one tiny instance across batch
// sizes and non-adaptive relaxations; see ComputeAdaptivityGap.
type AdaptivityGap = oracle.AdaptivityGap

// ComputeAdaptivityGap computes, by exact dynamic programming, the
// optimal adaptive, batched-adaptive and non-adaptive seed-minimization
// values of a tiny instance (≤ ~14 edges) — the quantities behind the
// paper's §4.2 Remark on the adaptivity gap.
func ComputeAdaptivityGap(g *Graph, eta int64, batchSizes []int) (*AdaptivityGap, error) {
	return oracle.ComputeAdaptivityGap(g, eta, batchSizes)
}
