package asti_test

import (
	"fmt"
	"log"

	"asti"
)

// ExampleComputeAdaptivityGap computes exact optima on a toy instance:
// the hub's outcome decides the follow-up, so batching strictly hurts.
func ExampleComputeAdaptivityGap() {
	b := asti.NewGraphBuilder(5)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(0, 2, 0.5)
	g, err := b.Build("gap", true)
	if err != nil {
		log.Fatal(err)
	}
	gap, err := asti.ComputeAdaptivityGap(g, 3, []int{2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential OPT %.2f, batched(b=2) OPT %.2f, robust non-adaptive %d seeds\n",
		gap.Adaptive, gap.Batched[2], gap.NonAdaptiveRobust)
	// Output:
	// sequential OPT 2.00, batched(b=2) OPT 2.50, robust non-adaptive 3 seeds
}

// ExamplePageRank ranks a network where everyone points at node 0.
func ExamplePageRank() {
	b := asti.NewGraphBuilder(4)
	for v := int32(1); v < 4; v++ {
		b.AddEdge(v, 0, 0.5)
	}
	g, err := b.Build("instar", true)
	if err != nil {
		log.Fatal(err)
	}
	scores, err := asti.PageRank(g)
	if err != nil {
		log.Fatal(err)
	}
	best := 0
	for v, s := range scores {
		if s > scores[best] {
			best = v
		}
	}
	fmt.Println("most central node:", best)
	// Output:
	// most central node: 0
}

// ExampleCoreNumbers peels a clique with a pendant vertex.
func ExampleCoreNumbers() {
	b := asti.NewGraphBuilder(5)
	for u := int32(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddUndirected(u, v, 0.5)
		}
	}
	b.AddUndirected(0, 4, 0.5)
	g, err := b.Build("clique+pendant", false)
	if err != nil {
		log.Fatal(err)
	}
	core, err := asti.CoreNumbers(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clique member core %d, pendant core %d\n", core[1], core[4])
	// Output:
	// clique member core 6, pendant core 2
}
