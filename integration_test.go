package asti_test

// Cross-module integration: run every algorithm family on one small
// shared instance and assert the orderings the paper's evaluation is
// built on. Kept small enough for `go test .` but large enough that the
// orderings are not noise.

import (
	"testing"

	"asti"
)

func TestIntegrationOrderings(t *testing.T) {
	g, err := asti.GenerateDataset("synth-nethept", 0.15) // ~2280 nodes
	if err != nil {
		t.Fatal(err)
	}
	eta := int64(float64(g.N()) * 0.1)
	const worlds = 3
	const seed = 424242

	summaries := map[string]*asti.Summary{}
	for name, factory := range map[string]asti.PolicyFactory{
		"ASTI":   func() (asti.Policy, error) { return asti.NewASTI(0.5) },
		"ASTI-8": func() (asti.Policy, error) { return asti.NewASTIBatch(0.5, 8) },
	} {
		sum, err := asti.EvaluatePolicy(g, asti.IC, eta, factory, worlds, seed)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		summaries[name] = sum
	}

	// Adaptive feasibility: both meet η on every world.
	for name, sum := range summaries {
		for _, sp := range sum.Spreads {
			if int64(sp) < eta {
				t.Fatalf("%s spread %v below η", name, sp)
			}
		}
	}
	// Batched trades seeds for time.
	if summaries["ASTI-8"].MeanSeconds() >= summaries["ASTI"].MeanSeconds() {
		t.Errorf("ASTI-8 (%.3fs) not faster than ASTI (%.3fs)",
			summaries["ASTI-8"].MeanSeconds(), summaries["ASTI"].MeanSeconds())
	}
	if summaries["ASTI-8"].MeanSeeds() < summaries["ASTI"].MeanSeeds()-1 {
		t.Errorf("ASTI-8 used substantially fewer seeds (%v) than ASTI (%v) — implausible",
			summaries["ASTI-8"].MeanSeeds(), summaries["ASTI"].MeanSeeds())
	}

	// Non-adaptive comparator on the same worlds.
	S, err := asti.SelectNonAdaptive(g, asti.IC, eta, 0.5, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	fixed, misses := asti.EvaluateFixedSeedSet(g, asti.IC, eta, S, worlds, seed)
	// ATEUC cannot beat the adaptive seed count by a wide margin while
	// also missing the threshold (the paper's core comparison).
	if misses == 0 && float64(len(S)) < summaries["ASTI"].MeanSeeds()*0.5 {
		t.Errorf("ATEUC dominated ASTI (%d seeds vs %v, no misses) — check objective",
			len(S), summaries["ASTI"].MeanSeeds())
	}
	_ = fixed

	// The dual IM capability: k = mean ASTI seeds should reach a spread
	// lower bound in η's ballpark (sanity of the shared substrate).
	k := int(summaries["ASTI"].MeanSeeds())
	if k < 1 {
		k = 1
	}
	im, err := asti.MaximizeInfluence(g, asti.IC, k, 0.5, seed+2)
	if err != nil {
		t.Fatal(err)
	}
	if im.SpreadLB < float64(eta)/4 {
		t.Errorf("IM with k=%d certifies only %.0f spread — substrate mismatch", k, im.SpreadLB)
	}
}

// TestIntegrationTopicPipeline: generate → topic-blend → ASM → evaluate,
// all through the façade.
func TestIntegrationTopicPipeline(t *testing.T) {
	g, err := asti.GenerateDataset("synth-epinions", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	model, err := asti.NewTopicModel(g, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	item, err := model.Blend("item", []float64{0.5, 0.3, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	eta := int64(float64(item.N()) * 0.05)
	sum, err := asti.EvaluatePolicy(item, asti.IC, eta,
		func() (asti.Policy, error) { return asti.NewASTIBatch(0.5, 4) }, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MeanSpread() < float64(eta) {
		t.Fatalf("topic pipeline spread %v below η=%d", sum.MeanSpread(), eta)
	}
}
