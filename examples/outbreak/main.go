// Outbreak notification under time pressure: a public-health agency must
// alert at least η people through a word-of-mouth network, but each
// select-observe round costs a day. Larger batches finish the campaign in
// fewer rounds at the cost of extra seed messages — the TRIM-B tradeoff
// (paper §4, §6.2).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"asti"
)

func main() {
	g, err := asti.GenerateDataset("synth-youtube", 0.1)
	if err != nil {
		log.Fatal(err)
	}
	eta := int64(float64(g.N()) * 0.1)
	fmt.Printf("network: %d nodes, %d edges — alert target: %d people\n\n", g.N(), g.M(), eta)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "batch size\trounds (days)\tseeds used\tpeople alerted\tplanning time")
	for _, b := range []int{1, 2, 4, 8, 16} {
		var policy asti.Policy
		if b == 1 {
			policy, err = asti.NewASTI(0.5)
		} else {
			policy, err = asti.NewASTIBatch(0.5, b)
		}
		if err != nil {
			log.Fatal(err)
		}
		world := asti.SampleRealization(g, asti.LT, 11) // same world for every batch size
		start := time.Now()
		res, err := asti.RunAdaptive(g, asti.LT, eta, policy, world, 13)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%v\n",
			b, len(res.Rounds), len(res.Seeds), res.Spread, time.Since(start).Round(time.Millisecond))
	}
	tw.Flush()
	fmt.Println("\nbigger batches: fewer days and faster planning, a few more seeds — pick b from the campaign's clock")
}
