// Sketch oracle: rank every user's expected influence at once with
// bottom-k reachability sketches, then show the library's negative
// control — the reason the paper had to invent mRR-sets: no rescaling of
// an untruncated estimator recovers the truncated objective.
package main

import (
	"fmt"
	"log"
	"sort"

	"asti"
)

func main() {
	g, err := asti.GenerateDataset("synth-nethept", 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes / %d edges\n\n", g.N(), g.M())

	// Whole-graph influence ranking. RR-sampling answers "which node is
	// best" cheaply; sketches answer "how influential is EVERY node" in
	// one near-linear build.
	scores, err := asti.SketchInfluence(g, asti.IC, 64, 64, 7)
	if err != nil {
		log.Fatal(err)
	}
	type ranked struct {
		node  int32
		score float64
	}
	order := make([]ranked, len(scores))
	for v, s := range scores {
		order[v] = ranked{int32(v), s}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].score > order[j].score })
	fmt.Println("top 5 users by estimated expected influence:")
	for _, r := range order[:5] {
		fmt.Printf("  node %-6d E[I] ≈ %.1f\n", r.node, r.score)
	}

	// The §3.2 gap, demonstrated: compare min(Ê[I(v)], η) against the
	// Monte-Carlo truth of E[min(I(v), η)] for the top user. The naive
	// rescale systematically overshoots whenever the spread distribution
	// straddles η — which is exactly the seed-minimization regime.
	top := order[0].node
	eta := int64(order[0].score) // put η mid-distribution
	if eta < 2 {
		eta = 2
	}
	truth := asti.ExpectedTruncatedSpread(g, asti.IC, []int32{top}, eta, 4000, 9)
	naive := order[0].score
	if naive > float64(eta) {
		naive = float64(eta)
	}
	fmt.Printf("\ntruncated spread of node %d at η=%d:\n", top, eta)
	fmt.Printf("  naive min(Ê[I],η):   %.1f\n", naive)
	fmt.Printf("  true E[min(I,η)]:    %.1f   (mRR-sets estimate THIS one unbiasedly)\n", truth)
}
