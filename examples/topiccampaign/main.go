// Topic-aware campaigns: the same social network conducts different
// products differently (the paper's §2 pointer to topic-aware models).
// A sports gadget and a cooking gadget each get their own effective
// influence graph by blending per-topic edge probabilities with the
// item's topic mixture; ASM then plans each campaign on its own graph.
package main

import (
	"fmt"
	"log"

	"asti"
)

func main() {
	g, err := asti.GenerateDataset("synth-nethept", 0.2)
	if err != nil {
		log.Fatal(err)
	}
	// Three latent topics (say: sports, cooking, tech). The uniform
	// mixture reproduces the calibrated network exactly.
	model, err := asti.NewTopicModel(g, 3, 99)
	if err != nil {
		log.Fatal(err)
	}
	eta := int64(float64(g.N()) * 0.05)
	fmt.Printf("network: %d nodes — each campaign must influence %d users\n\n", g.N(), eta)

	items := []asti.TopicItem{
		{Name: "sports gadget (pure topic 0)", Mixture: asti.SingleTopicMixture(3, 0), EtaFrac: 0.05},
		{Name: "cooking gadget (pure topic 1)", Mixture: asti.SingleTopicMixture(3, 1), EtaFrac: 0.05},
		{Name: "mass-market item (uniform)", Mixture: asti.UniformMixture(3), EtaFrac: 0.05},
	}
	plan, err := asti.PlanTopicCampaigns(model, items, asti.IC, 0.5, 7)
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range plan.Results {
		first := res.Seeds
		if len(first) > 5 {
			first = first[:5]
		}
		fmt.Printf("%-32s %2d seeds, spread %4d, first seeds %v\n",
			res.Item, len(res.Seeds), res.Spread, first)
	}
	fmt.Printf("\nportfolio: %d incentives paid, %d distinct influencers used\n",
		plan.TotalSeeds, plan.DistinctSeeds)
	if ov, err := plan.Overlap(0, 1); err == nil {
		fmt.Printf("sports/cooking seed overlap (Jaccard): %.2f\n", ov)
	}
	fmt.Println("\ndifferent mixtures reshape who the influential users are —")
	fmt.Println("the planner must re-run ASM per item, not reuse one seed list.")
}
