// Adaptivity gap, exactly: on instances small enough for exact dynamic
// programming, compute the optimal sequential policy, the optimal batched
// policies, and both non-adaptive optima — the quantities the paper's
// §4.2 Remark calls unknown in general.
package main

import (
	"fmt"
	"log"

	"asti"
)

func main() {
	// The canonical gap instance: a hub whose outcome decides the best
	// follow-up. A sequential policy observes before committing its second
	// seed; a batch-2 policy cannot.
	b := asti.NewGraphBuilder(5)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(0, 2, 0.5)
	g, err := b.Build("gap-instance", true)
	if err != nil {
		log.Fatal(err)
	}

	const eta = 3
	gap, err := asti.ComputeAdaptivityGap(g, eta, []int{1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("instance: hub 0 → {1,2} with p=0.5 each, two isolated nodes; η = %d\n\n", eta)
	fmt.Printf("optimal sequential policy (b=1):  %.4f expected seeds\n", gap.Adaptive)
	for _, bsz := range []int{2, 3} {
		fmt.Printf("optimal batched policy  (b=%d):  %.4f expected seeds\n", bsz, gap.Batched[bsz])
	}
	fmt.Printf("exact truncated-greedy policy:    %.4f expected seeds (what TRIM approximates)\n", gap.Greedy)
	fmt.Printf("non-adaptive, E[I(S)] ≥ η:        %d seeds\n", gap.NonAdaptiveExpect)
	if gap.RobustFeasible {
		fmt.Printf("non-adaptive, feasible always:    %d seeds\n", gap.NonAdaptiveRobust)
	} else {
		fmt.Println("non-adaptive, feasible always:    impossible on this instance")
	}

	fmt.Println("\nreading:")
	fmt.Printf("  batching cost (b=2 vs b=1): +%.4f expected seeds — a strict adaptivity gap\n",
		gap.Batched[2]-gap.Adaptive)
	fmt.Println("  the robust non-adaptive optimum pays for the worst world up front;")
	fmt.Println("  the adaptive policy pays only when the hub's coin flips actually fail.")
}
