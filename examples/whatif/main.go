// What-if walkthrough of the paper's Example 2.3: why adaptive seed
// minimization must rank seeds by TRUNCATED spread, not vanilla spread.
//
// The example builds the paper's Figure 2 graph through the public
// builder API, estimates both objectives for every node, and shows that
// the vanilla ranking picks a seed that fails 25% of the time while the
// truncated ranking picks one that always meets the target.
package main

import (
	"fmt"
	"log"

	"asti"
)

func main() {
	// Figure 2: v1 →(0.5) v2 →(1) v4, v1 →(0.5) v3 →(1) v4.
	b := asti.NewGraphBuilder(4)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(0, 2, 0.5)
	b.AddEdge(1, 3, 1)
	b.AddEdge(2, 3, 1)
	g, err := b.Build("example-2.3", true)
	if err != nil {
		log.Fatal(err)
	}
	const eta = 2
	const samples = 200000

	fmt.Println("node  E[I(v)] (vanilla)  E[Γ(v)] (truncated, η=2)")
	for v := int32(0); v < g.N(); v++ {
		vanilla := asti.ExpectedSpread(g, asti.IC, []int32{v}, samples, uint64(v)+1)
		trunc := asti.ExpectedTruncatedSpread(g, asti.IC, []int32{v}, eta, samples, uint64(v)+100)
		fmt.Printf("v%d    %.3f              %.3f\n", v+1, vanilla, trunc)
	}
	fmt.Println("\nvanilla ranking picks v1 (2.75) — but with probability 1/4 neither")
	fmt.Println("coin-flip edge fires and v1 influences only itself, forcing a second")
	fmt.Println("seed. truncated ranking picks v2 or v3 (2.0): their two influenced")
	fmt.Println("nodes meet η=2 in EVERY realization.")

	// Measure the actual expected number of seeds each first-pick implies.
	for _, first := range []int32{0, 1} {
		var seedsUsed float64
		const worlds = 2000
		for w := uint64(0); w < worlds; w++ {
			world := asti.SampleRealization(g, asti.IC, w)
			spread, reached := asti.EvaluateSeedSet(world, []int32{first}, eta)
			_ = spread
			if reached {
				seedsUsed++
			} else {
				seedsUsed += 2 // one more seed always suffices here
			}
		}
		fmt.Printf("\nstarting with v%d: %.3f seeds in expectation", first+1, seedsUsed/worlds)
	}
	fmt.Println("\n\n(the paper's arithmetic: 1.25 for v1, 1.00 for v2 — Example 2.3)")
}
