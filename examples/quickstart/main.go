// Quickstart: generate a synthetic social network, then adaptively select
// the fewest seeds that influence at least 5% of it.
package main

import (
	"fmt"
	"log"

	"asti"
)

func main() {
	// A NetHEPT-scale synthetic social network with weighted-cascade
	// edge probabilities (p(u,v) = 1/indeg(v)).
	g, err := asti.GenerateDataset("synth-nethept", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	eta := int64(float64(g.N()) * 0.05)
	fmt.Printf("network: %d nodes, %d edges — target: influence %d users\n", g.N(), g.M(), eta)

	// The paper's ASTI policy (TRIM, ε = 0.5).
	policy, err := asti.NewASTI(0.5)
	if err != nil {
		log.Fatal(err)
	}

	// One "true world": the realization the campaign actually unfolds in.
	// The policy cannot see it; it only observes each batch's outcome.
	world := asti.SampleRealization(g, asti.IC, 42)

	res, err := asti.RunAdaptive(g, asti.IC, eta, policy, world, 43)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ASTI used %d seeds to influence %d users (threshold met: %v)\n",
		len(res.Seeds), res.Spread, res.ReachedEta)
	for i, round := range res.Rounds {
		fmt.Printf("  round %2d: seeded %v → %d newly influenced (remaining shortfall was %d)\n",
			i+1, round.Seeds, round.Marginal, round.EtaIBefore)
	}
}
