// Viral marketing: the paper's motivating scenario. An advertiser must
// give away as few free product samples as possible while still reaching
// a contractual number of influenced users.
//
// The example contrasts the two ways to plan the campaign:
//
//   - non-adaptive (ATEUC): commit to a seed set up front from the model
//     alone. On some realizations it under-delivers (contract breached),
//     on others it wastes samples.
//   - adaptive (ASTI): ship samples in waves, watch who actually got
//     influenced, and stop the moment the contract is met.
package main

import (
	"fmt"
	"log"

	"asti"
)

func main() {
	g, err := asti.GenerateDataset("synth-epinions", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	eta := int64(float64(g.N()) * 0.05) // contract: influence 5% of the network
	const worlds = 10                   // how many alternative futures we score
	fmt.Printf("network: %d nodes, %d edges — contract: %d influenced users\n\n", g.N(), g.M(), eta)

	// --- Non-adaptive plan: one committed seed set. ---
	committed, err := asti.SelectNonAdaptive(g, asti.IC, eta, 0.5, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-adaptive (ATEUC) committed to %d free samples\n", len(committed))
	breaches := 0
	var nonAdaptiveSpread float64
	for w := uint64(0); w < worlds; w++ {
		world := asti.SampleRealization(g, asti.IC, 100+w)
		spread, reached := asti.EvaluateSeedSet(world, committed, eta)
		nonAdaptiveSpread += float64(spread)
		if !reached {
			breaches++
		}
	}
	fmt.Printf("  over %d futures: mean spread %.0f, contract breached in %d\n\n",
		worlds, nonAdaptiveSpread/worlds, breaches)

	// --- Adaptive plan: waves of size 4 (shipping samples one at a time
	// is slow; waves of 4 keep the campaign practical). ---
	var adaptiveSeeds, adaptiveSpread float64
	for w := uint64(0); w < worlds; w++ {
		policy, err := asti.NewASTIBatch(0.5, 4)
		if err != nil {
			log.Fatal(err)
		}
		world := asti.SampleRealization(g, asti.IC, 100+w) // the same futures
		res, err := asti.RunAdaptive(g, asti.IC, eta, policy, world, 200+w)
		if err != nil {
			log.Fatal(err)
		}
		adaptiveSeeds += float64(len(res.Seeds))
		adaptiveSpread += float64(res.Spread)
		if !res.ReachedEta {
			log.Fatalf("adaptive run missed the contract — impossible by construction")
		}
	}
	fmt.Printf("adaptive (ASTI-4) used %.1f samples on average, mean spread %.0f\n",
		adaptiveSeeds/worlds, adaptiveSpread/worlds)
	fmt.Printf("  contract met in every future — adaptivity converts spread variance into budget variance\n")
}
