// Dual problem: seed minimization and influence maximization are two
// sides of the same coin. This example solves IM with both certified
// solvers the library ships (OPIM-C and IMM), then closes the loop: it
// asks ASTI to reach the spread that the IM seed set achieves, and checks
// that the adaptive seed count comes in at or below the IM budget.
package main

import (
	"fmt"
	"log"

	"asti"
)

func main() {
	g, err := asti.GenerateDataset("synth-epinions", 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes / %d edges\n\n", g.N(), g.M())

	const k = 10
	// Forward direction: best spread for a budget of k seeds.
	opim, err := asti.MaximizeInfluence(g, asti.IC, k, 0.3, 7)
	if err != nil {
		log.Fatal(err)
	}
	immRes, err := asti.MaximizeInfluenceIMM(g, asti.IC, k, 0.3, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("influence maximization with k = %d seeds:\n", k)
	fmt.Printf("  OPIM-C: certified E[I(S)] ≥ %.0f (ratio %.2f)\n", opim.SpreadLB, opim.Ratio)
	fmt.Printf("  IMM:    estimated E[I(S)] ≈ %.0f (pool θ = %d)\n\n", immRes.SpreadEst, immRes.Theta)

	// Reverse direction: adaptively reach the spread OPIM-C certified.
	eta := int64(opim.SpreadLB)
	if eta < 1 {
		log.Fatal("certified spread too small to invert")
	}
	policy, err := asti.NewASTI(0.5)
	if err != nil {
		log.Fatal(err)
	}
	const worlds = 3
	var seeds float64
	for i := 0; i < worlds; i++ {
		world := asti.SampleRealization(g, asti.IC, uint64(40+i))
		res, err := asti.RunAdaptive(g, asti.IC, eta, policy, world, uint64(50+i))
		if err != nil {
			log.Fatal(err)
		}
		seeds += float64(len(res.Seeds))
	}
	fmt.Printf("seed minimization back across the duality: η = %d needs %.1f adaptive seeds (IM budget was %d)\n",
		eta, seeds/worlds, k)
	fmt.Println("adaptivity lets the minimizer stop early on lucky worlds — that slack is the paper's whole point.")
}
