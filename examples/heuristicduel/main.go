// Heuristic duel: how many extra seeds do guarantee-free rankings pay
// relative to ASTI? Runs PageRank, degree-discount and k-core policies
// against the paper's algorithm on identical realizations.
package main

import (
	"fmt"
	"log"

	"asti"
)

func main() {
	g, err := asti.GenerateDataset("synth-nethept", 0.3)
	if err != nil {
		log.Fatal(err)
	}
	eta := int64(float64(g.N()) * 0.1)
	fmt.Printf("network: %d nodes / %d edges — target η = %d (10%%)\n\n", g.N(), g.M(), eta)

	astiPolicy, err := asti.NewASTI(0.5)
	if err != nil {
		log.Fatal(err)
	}
	contenders := []struct {
		policy asti.Policy
		note   string
	}{
		{astiPolicy, "the paper's certified policy"},
		{asti.NewPageRankPolicy(), "static global importance"},
		{asti.NewDegreeDiscountPolicy(0.1), "residual-aware degree (Chen et al. 2009)"},
		{asti.NewKCorePolicy(), "structural coreness"},
	}

	const worlds = 5
	fmt.Printf("%-16s %-8s %-8s  %s\n", "policy", "seeds", "spread", "note")
	for _, c := range contenders {
		var seeds, spread float64
		for i := 0; i < worlds; i++ {
			world := asti.SampleRealization(g, asti.IC, uint64(100+i))
			res, err := asti.RunAdaptive(g, asti.IC, eta, c.policy, world, uint64(200+i))
			if err != nil {
				log.Fatal(err)
			}
			seeds += float64(len(res.Seeds))
			spread += float64(res.Spread)
		}
		fmt.Printf("%-16s %-8.1f %-8.0f  %s\n", c.policy.Name(), seeds/worlds, spread/worlds, c.note)
	}
	fmt.Println("\nEvery adaptive policy reaches η on every world — the heuristics just pay more seeds.")
}
