package asti_test

// One benchmark per table/figure of the paper's evaluation, each running
// the corresponding bench experiment on the Tiny profile (smallest sizes
// that still exhibit every qualitative shape), plus micro-benchmarks of
// the primitives the paper's cost model is built on (mRR generation,
// forward simulation, greedy coverage, one TRIM round).
//
// To regenerate figures at realistic scale use cmd/experiments; these
// benchmarks exist so `go test -bench=.` exercises every experiment path
// and tracks the primitives' throughput.

import (
	"io"
	"testing"

	"asti"
	"asti/internal/adaptive"
	"asti/internal/bench"
	"asti/internal/diffusion"
	"asti/internal/gen"
	"asti/internal/graph"
	"asti/internal/rng"
	"asti/internal/rrset"
	"asti/internal/trim"
)

// benchProfile returns the Tiny profile with a single realization so a
// benchmark iteration is one full (small) experiment.
func benchProfile() bench.Profile {
	p := bench.Tiny()
	p.Realizations = 1
	p.Scales = map[string]float64{
		"synth-nethept":     0.1,
		"synth-epinions":    0.05,
		"synth-youtube":     0.02,
		"synth-livejournal": 0.015,
	}
	p.Thresholds = []float64{0.05, 0.1}
	p.ThresholdsSmall = []float64{0.05}
	p.Batches = []int{8}
	return p
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(benchProfile(), nil)
		if err := r.Run(id, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates the dataset-details table (paper Table 2).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFigure3 regenerates the degree distributions (paper Figure 3).
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFigure4 regenerates seeds-vs-threshold under IC (paper Fig. 4).
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFigure5 regenerates time-vs-threshold under IC (paper Fig. 5).
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFigure6 regenerates seeds-vs-threshold under LT (paper Fig. 6).
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFigure7 regenerates time-vs-threshold under LT (paper Fig. 7).
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkTable3 regenerates the ASTI-vs-ATEUC improvement ratios
// (paper Table 3; consumes both model sweeps).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFigure8 regenerates the per-realization spread comparison
// (paper Figure 8).
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFigure9 regenerates spread-vs-threshold (paper Figure 9,
// Appendix C).
func BenchmarkFigure9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFigure10 regenerates the marginal-spread-per-seed trace
// (paper Figure 10, Appendix D).
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkAblationRounding regenerates the root-rounding ablation
// (§3.3 Remark).
func BenchmarkAblationRounding(b *testing.B) { benchExperiment(b, "ablation-rounding") }

// BenchmarkAblationBatch regenerates the batch-size ablation (§6.2/§6.3).
func BenchmarkAblationBatch(b *testing.B) { benchExperiment(b, "ablation-batch") }

// BenchmarkAblationTruncated regenerates the truncated-vs-vanilla
// objective ablation (§6.2's 10–20× mechanism).
func BenchmarkAblationTruncated(b *testing.B) { benchExperiment(b, "ablation-truncated") }

// BenchmarkAblationScaling regenerates the Theorem 3.11 time-scaling
// check (normalized cost across graph scales).
func BenchmarkAblationScaling(b *testing.B) { benchExperiment(b, "ablation-scaling") }

// --- Primitive micro-benchmarks ---

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		Name: "bench", N: 20000, AvgDeg: 3, UniformMix: 0.4, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkMRRGenerationIC measures one mRR-set under IC (the unit of the
// paper's Lemma 3.8 cost model).
func BenchmarkMRRGenerationIC(b *testing.B) {
	g := benchGraph(b)
	s := rrset.NewSampler(g, diffusion.IC)
	r := rng.New(2)
	inactive := make([]int32, g.N())
	for i := range inactive {
		inactive[i] = int32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MRR(20, inactive, nil, r, nil)
	}
}

// BenchmarkMRRGenerationLT measures one mRR-set under LT.
func BenchmarkMRRGenerationLT(b *testing.B) {
	g := benchGraph(b)
	s := rrset.NewSampler(g, diffusion.LT)
	r := rng.New(2)
	inactive := make([]int32, g.N())
	for i := range inactive {
		inactive[i] = int32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MRR(20, inactive, nil, r, nil)
	}
}

// BenchmarkForwardSimulationIC measures one fresh forward cascade.
func BenchmarkForwardSimulationIC(b *testing.B) {
	g := benchGraph(b)
	sim := diffusion.NewSimulator(g, diffusion.IC)
	r := rng.New(3)
	seeds := []int32{0, 7, 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Spread(seeds, nil, r)
	}
}

// BenchmarkRealizationSampling measures materializing one full IC world.
func BenchmarkRealizationSampling(b *testing.B) {
	g := benchGraph(b)
	r := rng.New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diffusion.SampleRealization(g, diffusion.IC, r)
	}
}

// BenchmarkGreedyCoverage measures the TRIM-B greedy over a realistic
// mRR pool (built through the shared sampling engine).
func BenchmarkGreedyCoverage(b *testing.B) {
	g := benchGraph(b)
	inactive := make([]int32, g.N())
	for i := range inactive {
		inactive[i] = int32(i)
	}
	engine := rrset.NewEngine(g, diffusion.IC, 0)
	defer engine.Close()
	coll := rrset.NewCollection(g)
	engine.Generate(coll, rrset.Request{
		Strategy: rrset.MultiRoot(rrset.RoundRandomized), Inactive: inactive,
		EtaI: int64(g.N()) / 10, Count: 5000, Seed: 5,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coll.GreedyMaxCoverage(8, nil)
	}
}

// BenchmarkTRIMRound measures one full TRIM seed selection (Algorithm 2)
// on a fresh residual state.
func BenchmarkTRIMRound(b *testing.B) {
	g := benchGraph(b)
	inactive := make([]int32, g.N())
	for i := range inactive {
		inactive[i] = int32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol := trim.MustNew(trim.Config{Epsilon: 0.5, Batch: 1, Truncated: true})
		st := &adaptive.State{
			G: g, Model: diffusion.IC, Eta: int64(g.N()) / 10,
			Inactive: inactive, Rng: rng.New(uint64(i)),
		}
		if _, err := pol.SelectBatch(st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveRunEndToEnd measures a complete ASTI campaign through
// the public API on a small network.
func BenchmarkAdaptiveRunEndToEnd(b *testing.B) {
	g, err := asti.GenerateDataset("synth-nethept", 0.1)
	if err != nil {
		b.Fatal(err)
	}
	eta := int64(float64(g.N()) * 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		policy, err := asti.NewASTI(0.5)
		if err != nil {
			b.Fatal(err)
		}
		world := asti.SampleRealization(g, asti.IC, uint64(i))
		if _, err := asti.RunAdaptive(g, asti.IC, eta, policy, world, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}
