package asti

import (
	"math"
	"testing"
)

func TestPublicHeuristicPolicies(t *testing.T) {
	g, err := GenerateDataset("synth-nethept", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	eta := int64(float64(g.N()) * 0.1)
	for _, pol := range []Policy{
		NewPageRankPolicy(),
		NewDegreeDiscountPolicy(0.1),
		NewKCorePolicy(),
	} {
		world := SampleRealization(g, IC, 5)
		res, err := RunAdaptive(g, IC, eta, pol, world, 6)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.Spread < eta {
			t.Fatalf("%s: spread %d < eta %d", pol.Name(), res.Spread, eta)
		}
	}
}

func TestPublicVaswaniPolicy(t *testing.T) {
	g, err := GenerateDataset("synth-nethept", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	eta := int64(float64(g.N()) * 0.1)
	pol := NewVaswaniPolicy(0.3)
	world := SampleRealization(g, IC, 9)
	res, err := RunAdaptive(g, IC, eta, pol, world, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spread < eta {
		t.Fatalf("spread %d < eta %d", res.Spread, eta)
	}
}

func TestPublicCentrality(t *testing.T) {
	g, err := GenerateDataset("synth-nethept", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := PageRank(g)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PageRank sums to %v", sum)
	}
	core, err := CoreNumbers(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(core) != int(g.N()) {
		t.Fatalf("core numbers length %d != n %d", len(core), g.N())
	}
}

func TestPublicIMMAgainstOPIMC(t *testing.T) {
	g, err := GenerateDataset("synth-nethept", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	immRes, err := MaximizeInfluenceIMM(g, IC, k, 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	opim, err := MaximizeInfluence(g, IC, k, 0.4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sImm := ExpectedSpread(g, IC, immRes.Seeds, 2000, 5)
	sOpim := ExpectedSpread(g, IC, opim.Seeds, 2000, 6)
	lo, hi := sImm, sOpim
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo < 0.5*hi {
		t.Fatalf("certified IM solvers diverge: IMM %.0f vs OPIM-C %.0f", sImm, sOpim)
	}
}

func TestPublicAdaptivityGap(t *testing.T) {
	b := NewGraphBuilder(4)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(0, 2, 0.5)
	g, err := b.Build("tiny", true)
	if err != nil {
		t.Fatal(err)
	}
	gap, err := ComputeAdaptivityGap(g, 2, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if gap.Batched[2] < gap.Adaptive-1e-12 {
		t.Fatalf("batched optimum %v below sequential %v", gap.Batched[2], gap.Adaptive)
	}
}

func TestPublicASTIParallel(t *testing.T) {
	g, err := GenerateDataset("synth-nethept", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	eta := int64(float64(g.N()) * 0.1)
	pol, err := NewASTIParallel(0.5, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	world := SampleRealization(g, IC, 77)
	res, err := RunAdaptive(g, IC, eta, pol, world, 78)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spread < eta {
		t.Fatalf("spread %d < eta %d", res.Spread, eta)
	}
}

func TestPublicEvaluateParallel(t *testing.T) {
	g, err := GenerateDataset("synth-nethept", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	eta := int64(float64(g.N()) * 0.05)
	factory := func() (Policy, error) { return NewASTI(0.5) }
	a, err := EvaluatePolicyParallel(g, IC, eta, factory, 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluatePolicyParallel(g, IC, eta, factory, 4, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("world %d: worker counts disagree (%v vs %v)", i, a.Seeds[i], b.Seeds[i])
		}
	}
}

func TestPublicSketchInfluence(t *testing.T) {
	g, err := GenerateDataset("synth-nethept", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := SketchInfluence(g, IC, 16, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != int(g.N()) {
		t.Fatalf("scores length %d != n %d", len(scores), g.N())
	}
	for v, s := range scores {
		// Every node influences at least itself; the bottom-k estimator may
		// sit slightly under 1 due to sampling noise when saturated.
		if s < 0.5 {
			t.Fatalf("node %d estimate %v implausibly low", v, s)
		}
	}
}

func TestPublicTopicCampaigns(t *testing.T) {
	g, err := GenerateDataset("synth-nethept", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewTopicModel(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	items := []TopicItem{
		{Name: "broad", Mixture: UniformMixture(2), EtaFrac: 0.05},
		{Name: "niche", Mixture: SingleTopicMixture(2, 1), EtaFrac: 0.03},
	}
	plan, err := PlanTopicCampaigns(m, items, IC, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range plan.Results {
		if res.Spread < res.Eta {
			t.Fatalf("item %q missed its threshold", res.Item)
		}
	}
}

func TestPublicBinaryCodec(t *testing.T) {
	g, err := GenerateDataset("synth-nethept", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/g.asmg"
	if err := SaveGraphBinary(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGraphBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("round-trip changed dimensions: (%d,%d) vs (%d,%d)", got.N(), got.M(), g.N(), g.M())
	}
}
