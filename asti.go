// Package asti is a Go implementation of "Efficient Approximation
// Algorithms for Adaptive Seed Minimization" (Tang et al., SIGMOD 2019).
//
// Adaptive seed minimization (ASM) asks: given a probabilistic social
// network and a threshold η, how few seed users must we incentivize —
// choosing them one batch at a time and observing each batch's actual
// influence before choosing the next — so that at least η users end up
// influenced?
//
// The package exposes the paper's ASTI framework with its TRIM
// (one-seed-per-round) and TRIM-B (batched) policies, built on multi-root
// reverse-reachable (mRR) set sampling, plus the evaluation's baselines:
// the non-adaptive seed minimizer ATEUC and the untruncated adaptive
// greedy AdaptIM.
//
// # Quick start
//
//	g, _ := asti.GenerateDataset("synth-nethept", 1.0)
//	policy, _ := asti.NewASTI(0.5)
//	world := asti.SampleRealization(g, asti.IC, 42)
//	res, _ := asti.RunAdaptive(g, asti.IC, 500, policy, world, 43)
//	fmt.Println(len(res.Seeds), "seeds influenced", res.Spread, "users")
//
// # The sampling engine and the Workers knob
//
// All RR/mRR sampling — TRIM's adaptive rounds, the OPIM-C and IMM
// influence maximizers, and the ATEUC baseline alike — runs through one
// shared concurrent engine (internal/rrset.Engine): a persistent worker
// pool with per-worker scratch, a pluggable root strategy (single-root
// RR; randomized/floor/ceil-rounded mRR), and reusable set collections
// that reset in O(touched) between adaptive rounds. Each sampled set
// seeds its own generator from the batch seed, so results are
// byte-identical for every worker count: parallelism is purely a speed
// knob.
//
// The knob is plumbed through the facade as WithWorkers:
//
//	policy, _ := asti.NewASTI(0.5, asti.WithWorkers(8))
//	res, _ := asti.MaximizeInfluence(g, asti.IC, 50, 0.1, 7, asti.WithWorkers(4))
//
// The default (0) uses GOMAXPROCS; WithWorkers(1) forces the sequential
// path. Both select the same seeds.
//
// The subpackages under internal/ hold the implementation: graph (CSR
// substrate), diffusion (IC/LT models and realizations), rrset (the mRR
// sampling engine), trim (the core algorithms), adaptive (the ASTI loop),
// baselines, and bench (the experiment harness behind cmd/experiments).
package asti

import (
	"fmt"
	"io"

	"asti/internal/adaptive"
	"asti/internal/baselines"
	"asti/internal/diffusion"
	"asti/internal/estimator"
	"asti/internal/gen"
	"asti/internal/graph"
	"asti/internal/im"
	"asti/internal/rng"
	"asti/internal/rrset"
	"asti/internal/topics"
	"asti/internal/trim"
)

// Graph is a probabilistic social network in CSR form. Build one with
// NewGraphBuilder, LoadGraph, GeneratePowerLaw, or GenerateDataset.
type Graph = graph.Graph

// GraphBuilder accumulates edges for a Graph.
type GraphBuilder = graph.Builder

// Model selects the diffusion model.
type Model = diffusion.Model

// The two diffusion models of the paper's evaluation.
const (
	// IC is the independent cascade model.
	IC = diffusion.IC
	// LT is the linear threshold model.
	LT = diffusion.LT
)

// Realization is one fully materialized influence-propagation world; the
// adaptive loop observes reachability in it.
type Realization = diffusion.Realization

// Policy selects seed batches against residual-graph states; see NewASTI,
// NewASTIBatch, NewAdaptIM.
type Policy = adaptive.Policy

// Result summarizes one adaptive run: seed sequence, per-round trace,
// final spread and selection time.
type Result = adaptive.Result

// PowerLawConfig parameterizes GeneratePowerLaw.
type PowerLawConfig = gen.PowerLawConfig

// DatasetSpec describes a registered synthetic scale-model dataset.
type DatasetSpec = gen.DatasetSpec

// NewGraphBuilder returns a builder for a graph with n nodes.
func NewGraphBuilder(n int32) *GraphBuilder { return graph.NewBuilder(n) }

// LoadGraph reads a graph from an edge-list file (see cmd/datagen for the
// format).
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// SaveGraph writes a graph to an edge-list file.
func SaveGraph(path string, g *Graph) error { return graph.SaveFile(path, g) }

// ReadGraph parses an edge list from r.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// GeneratePowerLaw synthesizes a power-law social network with
// weighted-cascade edge probabilities.
func GeneratePowerLaw(cfg PowerLawConfig) (*Graph, error) { return gen.PowerLaw(cfg) }

// Datasets lists the registered synthetic scale models of the paper's
// evaluation datasets.
func Datasets() []DatasetSpec { return gen.Datasets() }

// GenerateDataset materializes a registered dataset at the given scale
// ∈ (0,1].
func GenerateDataset(name string, scale float64) (*Graph, error) {
	spec, err := gen.Dataset(name)
	if err != nil {
		return nil, err
	}
	return spec.Generate(scale)
}

// Option configures the sampling machinery behind a policy or solver.
type Option func(*options)

type options struct {
	workers    int
	reuse      bool
	samplerVer rrset.Version
}

// WithWorkers sizes the sampling engine's worker pool: 0 (the default)
// uses GOMAXPROCS, 1 forces the sequential path, n > 1 uses n workers.
// Selections are byte-identical for every setting.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithPoolReuse toggles cross-round sampling-pool reuse for the adaptive
// policies (default on): instead of regenerating the whole mRR pool each
// round, the policy prunes the sets invalidated by the activation delta,
// regenerates exactly those, and tops the pool up — so a round's sampling
// cost scales with how much the residual graph changed, not with θ_max.
// Reuse on or off only changes speed: the selected seeds are identical.
func WithPoolReuse(on bool) Option {
	return func(o *options) { o.reuse = on }
}

// WithSamplerVersion pins the sampler's stream-consumption contract
// (1 = the original per-edge-coin stream, 2 = geometric edge-coin
// skipping on uniform-probability IC blocks; 0 = the current default).
// Selections are identically distributed under every version — the knob
// exists for byte-exact reproduction of runs recorded under an older
// contract (e.g. replaying a serve-layer journal written by v1).
func WithSamplerVersion(v int) Option {
	return func(o *options) { o.samplerVer = rrset.Version(v) }
}

func applyOptions(opts []Option) options {
	o := options{reuse: true}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// NewASTI returns the paper's TRIM policy: one seed per round maximizing
// the expected truncated marginal spread, with a (1−1/e)(1−ε)
// per-round guarantee and the (lnη+1)²/((1−1/e)(1−ε)) overall ratio.
func NewASTI(epsilon float64, opts ...Option) (Policy, error) {
	o := applyOptions(opts)
	return trim.New(trim.Config{Epsilon: epsilon, Batch: 1, Truncated: true, Workers: o.workers,
		ReusePool: o.reuse, SamplerVersion: o.samplerVer})
}

// NewASTIBatch returns the TRIM-B policy selecting b seeds per round
// (guarantee scaled by ρ_b = 1−(1−1/b)^b).
func NewASTIBatch(epsilon float64, b int, opts ...Option) (Policy, error) {
	o := applyOptions(opts)
	return trim.New(trim.Config{Epsilon: epsilon, Batch: b, Truncated: true, Workers: o.workers,
		ReusePool: o.reuse, SamplerVersion: o.samplerVer})
}

// NewAdaptIM returns the adaptive influence-maximization baseline: greedy
// on the untruncated marginal spread (no ASM approximation guarantee; the
// paper's §6 comparison).
func NewAdaptIM(epsilon float64, opts ...Option) (Policy, error) {
	o := applyOptions(opts)
	return baselines.NewAdaptIM(epsilon, 0, o.workers, o.reuse, o.samplerVer)
}

// SampleRealization draws one influence world for g under the model.
func SampleRealization(g *Graph, model Model, seed uint64) *Realization {
	return diffusion.SampleRealization(g, model, rng.New(seed))
}

// RunAdaptive executes an adaptive policy against one realization until
// at least eta nodes are influenced. The returned Result always satisfies
// Spread ≥ eta — the structural guarantee of adaptivity.
func RunAdaptive(g *Graph, model Model, eta int64, policy Policy, world *Realization, seed uint64) (*Result, error) {
	return adaptive.Run(g, model, eta, policy, world, rng.New(seed))
}

// SelectNonAdaptive runs the ATEUC baseline: it chooses a single seed set
// S with E[I(S)] ≥ eta without observing any propagation. Unlike adaptive
// runs, S may miss eta on individual realizations; score it with
// EvaluateSeedSet.
func SelectNonAdaptive(g *Graph, model Model, eta int64, epsilon float64, seed uint64, opts ...Option) ([]int32, error) {
	o := applyOptions(opts)
	a := &baselines.ATEUC{Epsilon: epsilon, Workers: o.workers}
	return a.Select(g, model, eta, rng.New(seed))
}

// EvaluateSeedSet measures a fixed seed set on one realization: its
// realized spread and whether it reaches eta.
func EvaluateSeedSet(world *Realization, seeds []int32, eta int64) (spread int64, reached bool) {
	return adaptive.EvaluateFixedSet(world, seeds, eta)
}

// ExpectedSpread Monte-Carlo-estimates E[I(S)] with the given number of
// simulations.
func ExpectedSpread(g *Graph, model Model, seeds []int32, samples int, seed uint64) float64 {
	return estimator.MCSpread(g, model, seeds, nil, samples, rng.New(seed))
}

// ExpectedTruncatedSpread Monte-Carlo-estimates E[min{I(S), eta}] — the
// objective ASM actually optimizes.
func ExpectedTruncatedSpread(g *Graph, model Model, seeds []int32, eta int64, samples int, seed uint64) float64 {
	return estimator.MCTruncated(g, model, seeds, nil, eta, samples, rng.New(seed))
}

// ValidateLT checks the linear-threshold weight constraint (incoming
// probabilities per node sum to at most 1) and returns a descriptive
// error on violation.
func ValidateLT(g *Graph) error { return diffusion.ValidateLT(g) }

// Summary aggregates a policy's performance across sampled worlds
// (paper §6 protocol: mean over realizations).
type Summary = adaptive.Summary

// PolicyFactory builds a fresh policy per evaluated world.
type PolicyFactory = adaptive.PolicyFactory

// EvaluatePolicy runs a fresh policy from factory on `worlds` sampled
// realizations and aggregates seeds, spread and selection time. Equal
// seeds see equal worlds, enabling paired policy comparisons.
func EvaluatePolicy(g *Graph, model Model, eta int64, factory PolicyFactory, worlds int, seed uint64) (*Summary, error) {
	return adaptive.Evaluate(g, model, eta, factory, worlds, seed)
}

// EvaluateFixedSeedSet scores a non-adaptively chosen seed set across
// sampled worlds, returning the summary and how many worlds missed eta.
func EvaluateFixedSeedSet(g *Graph, model Model, eta int64, seeds []int32, worlds int, seed uint64) (*Summary, int) {
	return adaptive.EvaluateFixed(g, model, eta, seeds, 0, worlds, seed)
}

// TopicModel carries per-topic edge probabilities for topic-aware
// campaigns (the paper's §2 extension): Blend produces the effective
// influence graph for an item's topic mixture, which every algorithm in
// this package consumes unchanged.
type TopicModel = topics.Model

// NewTopicModel synthesizes a k-topic model around g's probabilities;
// the uniform mixture reproduces g exactly.
func NewTopicModel(g *Graph, k int, seed uint64) (*TopicModel, error) {
	return topics.NewRandom(g, k, seed)
}

// UniformMixture is the uniform topic mixture of size k.
func UniformMixture(k int) []float64 { return topics.Uniform(k) }

// SingleTopicMixture concentrates the mixture on topic z.
func SingleTopicMixture(k, z int) []float64 { return topics.Single(k, z) }

// IMResult is a classical influence-maximization result (seed set with
// certified quality); see MaximizeInfluence.
type IMResult = im.Result

// MaximizeInfluence solves the dual problem — classical non-adaptive
// influence maximization — with the OPIM-C algorithm TRIM descends from:
// it selects k seeds whose expected spread is within (1−1/e)(1−ε) of the
// optimal k-set's, with a certified spread lower bound.
func MaximizeInfluence(g *Graph, model Model, k int, epsilon float64, seed uint64, opts ...Option) (*IMResult, error) {
	o := applyOptions(opts)
	return im.Select(g, model, k, im.Options{Epsilon: epsilon, Workers: o.workers}, rng.New(seed))
}

// PolicyName formats the conventional name for a batch size (helper for
// report code).
func PolicyName(batch int) string {
	if batch <= 1 {
		return "ASTI"
	}
	return fmt.Sprintf("ASTI-%d", batch)
}
