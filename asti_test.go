package asti_test

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"asti"
)

func testNetwork(t testing.TB) *asti.Graph {
	t.Helper()
	g, err := asti.GenerateDataset("synth-nethept", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPublicEndToEnd is the quickstart flow through the public API only.
func TestPublicEndToEnd(t *testing.T) {
	g := testNetwork(t)
	eta := int64(float64(g.N()) * 0.05)
	policy, err := asti.NewASTI(0.5)
	if err != nil {
		t.Fatal(err)
	}
	world := asti.SampleRealization(g, asti.IC, 42)
	res, err := asti.RunAdaptive(g, asti.IC, eta, policy, world, 43)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spread < eta || !res.ReachedEta {
		t.Fatalf("spread %d below η=%d", res.Spread, eta)
	}
	if len(res.Seeds) == 0 || len(res.Rounds) == 0 {
		t.Fatal("empty result")
	}
}

// TestPublicBatchAndBaselines covers every public policy constructor.
func TestPublicBatchAndBaselines(t *testing.T) {
	g := testNetwork(t)
	eta := int64(30)
	world := asti.SampleRealization(g, asti.LT, 7)

	for name, mk := range map[string]func() (asti.Policy, error){
		"ASTI":    func() (asti.Policy, error) { return asti.NewASTI(0.5) },
		"ASTI-4":  func() (asti.Policy, error) { return asti.NewASTIBatch(0.5, 4) },
		"AdaptIM": func() (asti.Policy, error) { return asti.NewAdaptIM(0.5) },
	} {
		p, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := asti.RunAdaptive(g, asti.LT, eta, p, world, 9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Spread < eta {
			t.Fatalf("%s: spread %d", name, res.Spread)
		}
	}

	S, err := asti.SelectNonAdaptive(g, asti.LT, eta, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(S) == 0 {
		t.Fatal("ATEUC returned no seeds")
	}
	spread, _ := asti.EvaluateSeedSet(world, S, eta)
	if spread <= 0 {
		t.Fatal("fixed-set evaluation returned nothing")
	}
}

// TestPublicConstructorValidation: bad parameters must be rejected at
// construction, not at run time.
func TestPublicConstructorValidation(t *testing.T) {
	if _, err := asti.NewASTI(0); err == nil {
		t.Error("ε=0 accepted")
	}
	if _, err := asti.NewASTIBatch(0.5, 0); err == nil {
		t.Error("batch 0 accepted")
	}
	if _, err := asti.NewAdaptIM(1.5); err == nil {
		t.Error("ε>1 accepted")
	}
	if _, err := asti.GenerateDataset("nope", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := asti.GenerateDataset("synth-nethept", 0); err == nil {
		t.Error("scale 0 accepted")
	}
}

// TestPublicGraphRoundTrip: builder → save → load through the façade.
func TestPublicGraphRoundTrip(t *testing.T) {
	b := asti.NewGraphBuilder(3)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(1, 2, 0.7)
	g, err := b.Build("tri", true)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := asti.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := asti.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 3 || g2.M() != 2 {
		t.Fatalf("round trip: n=%d m=%d", g2.N(), g2.M())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := asti.ReadGraph(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if g3.M() != g2.M() {
		t.Fatal("ReadGraph disagrees with LoadGraph")
	}
}

// TestPublicEstimators: the truncated estimator is bounded by η and by
// the vanilla estimator.
func TestPublicEstimators(t *testing.T) {
	g := testNetwork(t)
	seeds := []int32{0, 1}
	eta := int64(5)
	vanilla := asti.ExpectedSpread(g, asti.IC, seeds, 3000, 1)
	trunc := asti.ExpectedTruncatedSpread(g, asti.IC, seeds, eta, 3000, 1)
	if trunc > float64(eta)+1e-9 {
		t.Fatalf("E[Γ] = %v exceeds η", trunc)
	}
	if trunc > vanilla+0.35 { // estimates use independent samples
		t.Fatalf("E[Γ] = %v exceeds E[I] = %v", trunc, vanilla)
	}
	if vanilla < 2 {
		t.Fatalf("E[I] = %v below seed count", vanilla)
	}
}

// TestPublicExample23 reproduces the paper's Example 2.3 through the
// public API (same graph as examples/whatif).
func TestPublicExample23(t *testing.T) {
	b := asti.NewGraphBuilder(4)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(0, 2, 0.5)
	b.AddEdge(1, 3, 1)
	b.AddEdge(2, 3, 1)
	g, err := b.Build("ex23", true)
	if err != nil {
		t.Fatal(err)
	}
	v1 := asti.ExpectedSpread(g, asti.IC, []int32{0}, 100000, 3)
	if math.Abs(v1-2.75) > 0.05 {
		t.Fatalf("E[I(v1)] = %v, want ≈2.75", v1)
	}
	t1 := asti.ExpectedTruncatedSpread(g, asti.IC, []int32{0}, 2, 100000, 4)
	if math.Abs(t1-1.75) > 0.05 {
		t.Fatalf("E[Γ(v1)] = %v, want ≈1.75", t1)
	}
}

func TestValidateLTPublic(t *testing.T) {
	b := asti.NewGraphBuilder(3)
	b.AddEdge(0, 2, 0.8)
	b.AddEdge(1, 2, 0.8)
	g, err := b.Build("bad-lt", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := asti.ValidateLT(g); err == nil {
		t.Fatal("LT violation not detected")
	}
}

func TestPolicyName(t *testing.T) {
	if asti.PolicyName(1) != "ASTI" || asti.PolicyName(8) != "ASTI-8" {
		t.Fatal("policy naming wrong")
	}
}

func TestDatasetsRegistry(t *testing.T) {
	if len(asti.Datasets()) != 4 {
		t.Fatal("want 4 registered datasets")
	}
}

// TestEvaluatePolicyFacade: the multi-world evaluation helper through the
// public API, paired against a fixed set.
func TestEvaluatePolicyFacade(t *testing.T) {
	g := testNetwork(t)
	sum, err := asti.EvaluatePolicy(g, asti.IC, 25,
		func() (asti.Policy, error) { return asti.NewASTI(0.5) }, 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Worlds != 4 || sum.MeanSpread() < 25 {
		t.Fatalf("summary: %+v", sum)
	}
	S, err := asti.SelectNonAdaptive(g, asti.IC, 25, 0.5, 78)
	if err != nil {
		t.Fatal(err)
	}
	fixed, misses := asti.EvaluateFixedSeedSet(g, asti.IC, 25, S, 4, 77)
	if len(fixed.Spreads) != 4 || misses < 0 {
		t.Fatalf("fixed summary malformed")
	}
}

// TestMaximizeInfluenceFacade: the dual IM capability through the façade.
func TestMaximizeInfluenceFacade(t *testing.T) {
	g := testNetwork(t)
	res, err := asti.MaximizeInfluence(g, asti.IC, 3, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 3 || res.SpreadLB <= 0 {
		t.Fatalf("IM result malformed: %+v", res)
	}
	if _, err := asti.MaximizeInfluence(g, asti.IC, 0, 0.5, 9); err == nil {
		t.Fatal("k=0 accepted")
	}
}
