package asti_test

import (
	"fmt"

	"asti"
)

// Example_quickstart is the README's quick-start snippet, compiled: the
// README shows this exact code, so the snippet cannot drift from the
// real API or its real output.
func Example_quickstart() {
	g, _ := asti.GenerateDataset("synth-nethept", 0.1) // synthetic scale model
	policy, _ := asti.NewASTI(0.5)                     // TRIM, ε = 0.5
	world := asti.SampleRealization(g, asti.IC, 42)    // one influence world
	res, _ := asti.RunAdaptive(g, asti.IC, 76, policy, world, 43)
	fmt.Println(len(res.Seeds), "seeds influenced", res.Spread, "users")
	// Output: 8 seeds influenced 76 users
}
