package main

import (
	"os"
	"path/filepath"
	"testing"

	"asti/internal/graph"
)

func TestListMode(t *testing.T) {
	if err := run(true, "", false, "", "", 1, false, 0, 0, false, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateOneDataset(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "x.edges")
	if err := run(false, "synth-nethept", false, "", out, 0.02, false, 0, 0, false, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() < 100 {
		t.Fatalf("generated graph too small: n=%d", g.N())
	}
}

func TestGenerateAll(t *testing.T) {
	dir := t.TempDir()
	if err := run(false, "", true, dir, "", 0.01, false, 0, 0, false, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("want 4 dataset files, got %d", len(entries))
	}
}

func TestGenerateCustom(t *testing.T) {
	out := filepath.Join(t.TempDir(), "c.edges")
	if err := run(false, "", false, "", out, 1, true, 500, 2.5, true, 0.3, 1, 7); err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 500 {
		t.Fatalf("custom n = %d", g.N())
	}
}

func TestErrors(t *testing.T) {
	if err := run(false, "", false, "", "", 1, false, 0, 0, false, 0, 0, 0); err == nil {
		t.Error("no-op invocation accepted")
	}
	if err := run(false, "nope", false, "", "", 1, false, 0, 0, false, 0, 0, 0); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run(false, "", false, "", filepath.Join(t.TempDir(), "c.edges"), 1, true, 1, 2, false, 0.3, 1, 7); err == nil {
		t.Error("custom n=1 accepted")
	}
}
