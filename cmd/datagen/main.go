// Command datagen materializes the synthetic scale-model datasets (or a
// custom power-law graph) to edge-list files readable by asmrun -graph and
// the public API's LoadGraph.
//
// Usage:
//
//	datagen -list
//	datagen -dataset synth-nethept -out nethept.edges
//	datagen -all -dir ./data
//	datagen -custom -n 50000 -avgdeg 4 -directed -out custom.edges
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"asti/internal/gen"
	"asti/internal/graph"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the registered datasets and exit")
		dataset  = flag.String("dataset", "", "dataset to generate")
		all      = flag.Bool("all", false, "generate every registered dataset")
		dir      = flag.String("dir", ".", "output directory for -all")
		out      = flag.String("out", "", "output file (default <dataset>.edges)")
		scale    = flag.Float64("scale", 1.0, "generation scale (0,1]")
		custom   = flag.Bool("custom", false, "generate a custom power-law graph instead")
		n        = flag.Int("n", 10000, "custom: node count")
		avgdeg   = flag.Float64("avgdeg", 3, "custom: average generated edges per node")
		directed = flag.Bool("directed", false, "custom: directed graph")
		mix      = flag.Float64("mix", 0.4, "custom: uniform attachment mix β")
		lwcc     = flag.Float64("lwcc", 1.0, "custom: LWCC node fraction")
		seed     = flag.Uint64("seed", 1, "custom: generator seed")
	)
	flag.Parse()

	if err := run(*list, *dataset, *all, *dir, *out, *scale, *custom, *n, *avgdeg, *directed, *mix, *lwcc, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(list bool, dataset string, all bool, dir, out string, scale float64, custom bool, n int, avgdeg float64, directed bool, mix, lwcc float64, seed uint64) error {
	switch {
	case list:
		for _, spec := range gen.Datasets() {
			typ := "directed"
			if !spec.Directed {
				typ = "undirected"
			}
			fmt.Printf("%-18s scale model of %-12s n=%-7d avgdeg=%-5.2f %s lwcc=%.0f%%\n",
				spec.Name, spec.Paper, spec.N, spec.AvgDeg, typ, spec.LWCCFrac*100)
		}
		return nil
	case custom:
		g, err := gen.PowerLaw(gen.PowerLawConfig{
			Name: "custom", N: int32(n), AvgDeg: avgdeg, Directed: directed,
			UniformMix: mix, LWCCFrac: lwcc, Seed: seed,
		})
		if err != nil {
			return err
		}
		if out == "" {
			out = "custom.edges"
		}
		return save(out, g)
	case all:
		for _, spec := range gen.Datasets() {
			g, err := spec.Generate(scale)
			if err != nil {
				return err
			}
			if err := save(filepath.Join(dir, spec.Name+".edges"), g); err != nil {
				return err
			}
		}
		return nil
	case dataset != "":
		spec, err := gen.Dataset(dataset)
		if err != nil {
			return err
		}
		g, err := spec.Generate(scale)
		if err != nil {
			return err
		}
		if out == "" {
			out = dataset + ".edges"
		}
		return save(out, g)
	default:
		return fmt.Errorf("nothing to do: pass -list, -dataset, -all, or -custom")
	}
}

func save(path string, g *graph.Graph) error {
	// The .asmg extension selects the checksummed binary format (fast
	// cache for the larger scale models); anything else writes the
	// self-describing text edge list.
	var err error
	if strings.HasSuffix(path, ".asmg") {
		err = graph.SaveBinaryFile(path, g)
	} else {
		err = graph.SaveFile(path, g)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: n=%d m=%d avgdeg=%.2f lwcc=%d\n",
		path, g.N(), g.M(), g.AvgDegree(), g.LargestWCC())
	return nil
}
