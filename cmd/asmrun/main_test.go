package main

import (
	"path/filepath"
	"testing"

	"asti/internal/gen"
	"asti/internal/graph"
)

func TestMakePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"ASTI", "ASTI"},
		{"asti", "ASTI"},
		{"ASTI-8", "ASTI-8"},
		{"asti-2", "ASTI-2"},
		{"AdaptIM", "AdaptIM"},
		{"Degree", "Degree"},
		{"random", "Random"},
		{"MCGreedy", "MCGreedy"},
		{"celf", "CELFGreedy"},
	}
	for _, c := range cases {
		p, err := makePolicy(c.in, 0.5, 0, true)
		if err != nil {
			t.Errorf("makePolicy(%q): %v", c.in, err)
			continue
		}
		if p.Name() != c.want {
			t.Errorf("makePolicy(%q).Name() = %q, want %q", c.in, p.Name(), c.want)
		}
	}
	for _, bad := range []string{"", "TRIM", "ASTI-", "ASTI-0", "ASTI-x"} {
		if _, err := makePolicy(bad, 0.5, 0, true); err == nil {
			t.Errorf("makePolicy(%q) accepted", bad)
		}
	}
}

func TestRunFromDataset(t *testing.T) {
	err := run("synth-nethept", "", 0.05, "IC", "ASTI", 0, 0.05, 0.5, 0, true, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunATEUCPath(t *testing.T) {
	err := run("synth-nethept", "", 0.05, "LT", "ATEUC", 0, 0.05, 0.5, 0, true, 1, 2, false)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFromFile(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Name: "f", N: 300, AvgDeg: 2, UniformMix: 0.4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := graph.SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, 1, "IC", "ASTI-4", 20, 0, 0.5, 0, true, 2, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("no-such-dataset", "", 1, "IC", "ASTI", 10, 0, 0.5, 0, true, 1, 1, false); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run("synth-nethept", "", 0.05, "XY", "ASTI", 10, 0, 0.5, 0, true, 1, 1, false); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run("synth-nethept", "", 0.05, "IC", "nope", 10, 0, 0.5, 0, true, 1, 1, false); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run("", "/no/such/file", 1, "IC", "ASTI", 10, 0, 0.5, 0, true, 1, 1, false); err == nil {
		t.Error("missing graph file accepted")
	}
}
