// Command asmrun runs one adaptive-seed-minimization algorithm on one
// dataset and prints the per-round trace — the ad-hoc driver for exploring
// a single configuration.
//
// Usage:
//
//	asmrun -dataset synth-nethept -eta-frac 0.05 -model IC -policy ASTI
//	asmrun -graph my.edges -eta 500 -policy ASTI-8 -seed 7
//	asmrun -dataset synth-epinions -policy ATEUC -realizations 5
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"asti/internal/adaptive"
	"asti/internal/baselines"
	"asti/internal/diffusion"
	"asti/internal/gen"
	"asti/internal/graph"
	"asti/internal/rng"
	"asti/internal/trim"
)

func main() {
	var (
		dataset      = flag.String("dataset", "synth-nethept", "synthetic dataset name (see datagen -list)")
		graphPath    = flag.String("graph", "", "load a graph from an edge-list file instead of generating")
		scale        = flag.Float64("scale", 1.0, "dataset generation scale (0,1]")
		modelName    = flag.String("model", "IC", "diffusion model: IC or LT")
		policyName   = flag.String("policy", "ASTI", "ASTI, ASTI-<b>, AdaptIM, ATEUC, MCGreedy, CELF, Degree, Random, PageRank, DegreeDiscount, KCore, Vaswani, Sketch")
		eta          = flag.Int64("eta", 0, "absolute threshold η (overrides -eta-frac)")
		etaFrac      = flag.Float64("eta-frac", 0.05, "threshold as a fraction of n")
		epsilon      = flag.Float64("epsilon", 0.5, "approximation parameter ε")
		workers      = flag.Int("workers", 0, "sampling-engine workers (0 = all cores, 1 = sequential; ASTI/ATEUC policies)")
		reuse        = flag.Bool("reuse", true, "carry the sampling pool across adaptive rounds (speed only; selections are identical)")
		seed         = flag.Uint64("seed", 1, "random seed")
		realizations = flag.Int("realizations", 1, "number of realizations to average over")
		trace        = flag.Bool("trace", false, "print the per-round trace of the first realization")
		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	err := withProfiles(*cpuProfile, *memProfile, func() error {
		return run(*dataset, *graphPath, *scale, *modelName, *policyName, *eta, *etaFrac, *epsilon, *workers, *reuse, *seed, *realizations, *trace)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "asmrun: %v\n", err)
		os.Exit(1)
	}
}

// withProfiles wraps fn with optional pprof instrumentation: a CPU
// profile covering fn, and a heap profile snapped after it returns —
// profiling the adaptive loop without editing code.
func withProfiles(cpuPath, memPath string, fn func() error) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if err := fn(); err != nil {
		return err
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			return err
		}
		runtime.GC() // settle allocations so the heap profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

func run(dataset, graphPath string, scale float64, modelName, policyName string, eta int64, etaFrac, epsilon float64, workers int, reuse bool, seed uint64, realizations int, trace bool) error {
	var g *graph.Graph
	var err error
	if graphPath != "" {
		g, err = graph.LoadFile(graphPath)
	} else {
		var spec gen.DatasetSpec
		spec, err = gen.Dataset(dataset)
		if err == nil {
			g, err = spec.Generate(scale)
		}
	}
	if err != nil {
		return err
	}

	var model diffusion.Model
	switch strings.ToUpper(modelName) {
	case "IC":
		model = diffusion.IC
	case "LT":
		model = diffusion.LT
	default:
		return fmt.Errorf("unknown model %q (IC or LT)", modelName)
	}

	if eta == 0 {
		eta = int64(etaFrac * float64(g.N()))
		if eta < 1 {
			eta = 1
		}
	}
	fmt.Printf("graph %s: n=%d m=%d | model=%s η=%d ε=%g policy=%s\n",
		g.Name(), g.N(), g.M(), model, eta, epsilon, policyName)

	base := rng.New(seed)
	if strings.EqualFold(policyName, "ATEUC") {
		return runATEUC(g, model, eta, epsilon, workers, base, realizations)
	}

	policy, err := makePolicy(policyName, epsilon, workers, reuse)
	if err != nil {
		return err
	}
	var seedsSum, spreadSum, secSum float64
	for i := 0; i < realizations; i++ {
		φ := diffusion.SampleRealization(g, model, base.Split())
		res, err := adaptive.Run(g, model, eta, policy, φ, base.Split())
		if err != nil {
			return err
		}
		seedsSum += float64(len(res.Seeds))
		spreadSum += float64(res.Spread)
		secSum += res.Duration.Seconds()
		if i == 0 && trace {
			for r, tr := range res.Rounds {
				fmt.Printf("  round %3d: batch=%v marginal=%d η_i=%d n_i=%d\n",
					r+1, tr.Seeds, tr.Marginal, tr.EtaIBefore, tr.NiBefore)
			}
		}
	}
	k := float64(realizations)
	fmt.Printf("mean over %d realization(s): seeds=%.1f spread=%.0f selection=%.3fs\n",
		realizations, seedsSum/k, spreadSum/k, secSum/k)
	return nil
}

// makePolicy parses a policy name into an adaptive.Policy.
func makePolicy(name string, epsilon float64, workers int, reuse bool) (adaptive.Policy, error) {
	lower := strings.ToLower(name)
	switch {
	case lower == "asti":
		return trim.New(trim.Config{Epsilon: epsilon, Batch: 1, Truncated: true, Workers: workers, ReusePool: reuse})
	case strings.HasPrefix(lower, "asti-"):
		b, err := strconv.Atoi(lower[len("asti-"):])
		if err != nil || b < 1 {
			return nil, fmt.Errorf("bad batch size in %q", name)
		}
		return trim.New(trim.Config{Epsilon: epsilon, Batch: b, Truncated: true, Workers: workers, ReusePool: reuse})
	case lower == "adaptim":
		return baselines.NewAdaptIM(epsilon, 0, workers, reuse, 0)
	case lower == "mcgreedy":
		return &baselines.MCGreedy{Samples: 500, Truncated: true}, nil
	case lower == "celf":
		return &baselines.CELFGreedy{Samples: 500, Truncated: true}, nil
	case lower == "degree":
		return baselines.Degree{}, nil
	case lower == "random":
		return baselines.Random{}, nil
	case lower == "pagerank":
		return &baselines.PageRankPolicy{}, nil
	case lower == "degreediscount":
		return &baselines.DegreeDiscountPolicy{}, nil
	case lower == "kcore":
		return &baselines.KCorePolicy{}, nil
	case lower == "vaswani":
		return &baselines.Vaswani{RelErr: 0.2}, nil
	case lower == "sketch":
		return &baselines.SketchPolicy{}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

// runATEUC handles the non-adaptive baseline: one selection, per-world
// scoring.
func runATEUC(g *graph.Graph, model diffusion.Model, eta int64, epsilon float64, workers int, base *rng.Source, realizations int) error {
	a := &baselines.ATEUC{Epsilon: epsilon, Workers: workers}
	t0 := time.Now()
	S, err := a.Select(g, model, eta, base.Split())
	if err != nil {
		return err
	}
	fmt.Printf("ATEUC selected %d seeds in %.3fs (non-adaptive)\n", len(S), time.Since(t0).Seconds())
	misses := 0
	var spreadSum float64
	for i := 0; i < realizations; i++ {
		φ := diffusion.SampleRealization(g, model, base.Split())
		spread, reached := adaptive.EvaluateFixedSet(φ, S, eta)
		spreadSum += float64(spread)
		if !reached {
			misses++
		}
	}
	fmt.Printf("mean spread over %d realization(s): %.0f | missed η on %d\n",
		realizations, spreadSum/float64(realizations), misses)
	return nil
}
