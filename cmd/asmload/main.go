// Command asmload is the load generator for asmserve: it drives many
// concurrent adaptive-seeding campaigns over the real HTTP wire and
// reports what a client fleet experiences — session throughput, per-step
// latency quantiles (p50/p90/p99/p999), and an exact error census —
// plus the server's own /metrics view, into a machine-readable JSON
// report.
//
// Usage:
//
//	asmload -url http://127.0.0.1:8080 -dataset synth-nethept \
//	        -mode closed -concurrency 1000 -sessions 2000 -max-rounds 4 \
//	        -warmup 2s -o BENCH_load.json
//
//	asmload -mode open -rate 50 -duration 30s ...   # fixed arrival rate
//
// Exit status: 0 on a clean run; 1 on setup/run errors; 2 when a gate
// fails (-min-throughput not met, or more unexpected non-2xx responses
// than -max-unexpected) — the form CI load smokes key off.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"asti/internal/loadgen"
)

// errGate marks a failed acceptance gate (exit 2, distinct from setup
// errors) so CI can tell "the server is too slow / erroring" apart from
// "the bench never ran".
type errGate struct{ msg string }

func (e *errGate) Error() string { return e.msg }

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "asmload: %v\n", err)
	if _, gate := err.(*errGate); gate {
		os.Exit(2)
	}
	os.Exit(1)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("asmload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url         = fs.String("url", "http://127.0.0.1:8080", "asmserve base URL")
		mode        = fs.String("mode", "closed", "arrival model: closed (fixed fleet) or open (fixed rate)")
		concurrency = fs.Int("concurrency", 64, "closed loop: concurrent campaign drivers")
		rate        = fs.Float64("rate", 0, "open loop: campaign arrivals per second")
		sessions    = fs.Int("sessions", 0, "total campaigns to run (0 = until -duration)")
		duration    = fs.Duration("duration", 0, "measurement window wall clock (0 = until -sessions complete)")
		warmup      = fs.Duration("warmup", 0, "discard measurements for this long after start")
		think       = fs.Duration("think", 0, "pause between a campaign's rounds")
		maxRounds   = fs.Int("max-rounds", 4, "rounds per campaign (0 = drive to η)")
		churn       = fs.Float64("churn", 0, "per-round probability of a -churn-pause dormancy (passivation churn against the server's -idle-ttl)")
		churnPause  = fs.Duration("churn-pause", 2*time.Second, "how long a churned campaign sleeps")

		dataset    = fs.String("dataset", "synth-nethept", "campaign dataset name")
		policy     = fs.String("policy", "", "proposal policy (server default ASTI)")
		model      = fs.String("model", "", "diffusion model IC or LT (server default IC)")
		eta        = fs.Int64("eta", 0, "absolute threshold η (0 = use -eta-frac)")
		etaFrac    = fs.Float64("eta-frac", 0.05, "threshold as a fraction of n")
		epsilon    = fs.Float64("epsilon", 0, "approximation slack ε (server default 0.5)")
		workers    = fs.Int("workers", 1, "per-session sampling workers (1 keeps memory per session bounded under high concurrency)")
		samplerVer = fs.Int("sampler-version", 0, "pin the sampler contract version (0 = server default)")
		seed       = fs.Uint64("seed", 1, "base sampling seed; campaign i uses seed+i")

		timeout = fs.Duration("timeout", 30*time.Second, "per-request HTTP timeout")

		out           = fs.String("o", "", "write the JSON report to this file (empty = stdout only)")
		quiet         = fs.Bool("quiet", false, "suppress the human-readable summary on stderr")
		minThroughput = fs.Float64("min-throughput", 0, "gate: fail (exit 2) when sessions/sec falls below this")
		maxUnexpected = fs.Int("max-unexpected", -1, "gate: fail (exit 2) when unexpected non-2xx responses exceed this (-1 = don't gate)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := loadgen.Config{
		BaseURL:        *url,
		Mode:           *mode,
		Concurrency:    *concurrency,
		Rate:           *rate,
		Sessions:       *sessions,
		Duration:       *duration,
		Warmup:         *warmup,
		ThinkTime:      *think,
		MaxRounds:      *maxRounds,
		Churn:          *churn,
		ChurnPause:     *churnPause,
		Dataset:        *dataset,
		Policy:         *policy,
		Model:          *model,
		Eta:            *eta,
		EtaFrac:        *etaFrac,
		Epsilon:        *epsilon,
		Workers:        *workers,
		SamplerVersion: *samplerVer,
		Seed:           *seed,
		Timeout:        *timeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return err
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
	} else {
		stdout.Write(blob)
	}

	if !*quiet {
		printSummary(stderr, rep)
	}
	if *out != "" && !*quiet {
		fmt.Fprintf(stderr, "report written to %s\n", *out)
	}

	if *maxUnexpected >= 0 && rep.UnexpectedErrors() > uint64(*maxUnexpected) {
		return &errGate{fmt.Sprintf("gate failed: %d unexpected errors (max %d): %v",
			rep.UnexpectedErrors(), *maxUnexpected, rep.Errors)}
	}
	if *minThroughput > 0 && rep.SessionsPerSec < *minThroughput {
		return &errGate{fmt.Sprintf("gate failed: %.2f sessions/sec below the %.2f floor",
			rep.SessionsPerSec, *minThroughput)}
	}
	return nil
}

// printSummary renders the human-readable digest of a run.
func printSummary(w io.Writer, rep *loadgen.Report) {
	fmt.Fprintf(w, "mode=%s sessions: started=%d completed=%d aborted=%d rounds=%d\n",
		rep.Config.Mode, rep.SessionsStarted, rep.SessionsCompleted, rep.SessionsAborted, rep.Rounds)
	fmt.Fprintf(w, "throughput: %.2f sessions/sec, %.2f steps/sec over %.1fs measured\n",
		rep.SessionsPerSec, rep.StepsPerSec, rep.MeasuredSeconds)
	for _, op := range []string{"create", "next", "observe", "delete"} {
		s := rep.Steps[op]
		if s.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "%-8s n=%-7d p50=%.2fms p90=%.2fms p99=%.2fms p999=%.2fms max=%.2fms\n",
			op, s.Count, s.P50Ms, s.P90Ms, s.P99Ms, s.P999Ms, s.MaxMs)
	}
	if len(rep.Retries) > 0 {
		fmt.Fprintf(w, "retries honored: %v (exhausted %d)\n", rep.Retries, rep.RetriesExhausted)
	}
	if len(rep.Errors) > 0 {
		fmt.Fprintf(w, "UNEXPECTED errors: %v\n", rep.Errors)
	}
	if rep.Server != nil {
		fmt.Fprintf(w, "server: creates=%.0f proposals=%.0f observations=%.0f peak_pool=%.0fB peak_wal=%.0fB\n",
			rep.Server.CreatedTotal, rep.Server.ProposalsTotal, rep.Server.ObservationsTotal,
			rep.Server.PeakPoolBytes, rep.Server.PeakJournalBytes)
	}
}
