package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"asti/internal/loadgen"
)

// fakeServe is a minimal wire-compatible stand-in for asmserve (the
// real server lives in another main package and cannot be imported);
// the CLI test only needs the protocol shape, the end-to-end pairing
// runs in CI's load smoke against the real binary.
func fakeServe(t *testing.T, failNext bool) *httptest.Server {
	var mu sync.Mutex
	nextID := 0
	rounds := map[string]int{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		nextID++
		id := fmt.Sprintf("s%d", nextID)
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(map[string]any{"id": id})
	})
	mux.HandleFunc("POST /v1/sessions/{id}/next", func(w http.ResponseWriter, r *http.Request) {
		if failNext {
			w.WriteHeader(500)
			fmt.Fprint(w, `{"error":"boom"}`)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		id := r.PathValue("id")
		rounds[id]++
		json.NewEncoder(w).Encode(map[string]any{"id": id, "round": rounds[id], "seeds": []int32{3}})
	})
	mux.HandleFunc("POST /v1/sessions/{id}/observe", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"done": rounds[r.PathValue("id")] >= 2})
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]bool{"closed": true})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "asmserve_pool_bytes 1")
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestRunWritesReport(t *testing.T) {
	ts := fakeServe(t, false)
	out := filepath.Join(t.TempDir(), "BENCH_load.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-url", ts.URL, "-dataset", "tiny",
		"-mode", "closed", "-concurrency", "3", "-sessions", "9",
		"-o", out, "-min-throughput", "0.01", "-max-unexpected", "0",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.Experiment != "load" || rep.SessionsCompleted != 9 {
		t.Errorf("report %+v, want experiment=load completed=9", rep)
	}
	if !strings.Contains(stderr.String(), "sessions/sec") {
		t.Errorf("summary missing from stderr: %s", stderr.String())
	}
}

func TestGateFailsOnUnexpectedErrors(t *testing.T) {
	ts := fakeServe(t, true)
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-url", ts.URL, "-dataset", "tiny",
		"-concurrency", "2", "-sessions", "4", "-quiet",
		"-max-unexpected", "0",
	}, &stdout, &stderr)
	if err == nil {
		t.Fatal("gate passed despite injected 500s")
	}
	if _, ok := err.(*errGate); !ok {
		t.Fatalf("err %T (%v), want *errGate", err, err)
	}
	if !strings.Contains(err.Error(), "unexpected errors") {
		t.Errorf("gate error %q does not name the failed gate", err)
	}
}

func TestGateFailsOnThroughputFloor(t *testing.T) {
	ts := fakeServe(t, false)
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-url", ts.URL, "-dataset", "tiny",
		"-concurrency", "1", "-sessions", "2", "-quiet",
		"-min-throughput", "1e12",
	}, &stdout, &stderr)
	if err == nil {
		t.Fatal("gate passed an impossible throughput floor")
	}
	if _, ok := err.(*errGate); !ok {
		t.Fatalf("err %T (%v), want *errGate", err, err)
	}
}

func TestBadFlagsAreNotGateErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-mode", "bursty", "-sessions", "1"}, &stdout, &stderr)
	if err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, ok := err.(*errGate); ok {
		t.Fatal("setup error classified as a gate failure")
	}
}
