// Command asmserve is the adaptive-seeding session service: an HTTP/JSON
// front end over internal/serve that drives the paper's select–observe
// loop interactively. Clients create a session on a registered dataset,
// repeatedly fetch the next proposed seed batch and report back who the
// batch actually influenced, until η users are active.
//
// Start it and run one round trip:
//
//	asmserve -addr :8080 -scale 0.2
//
//	curl -s localhost:8080/v1/datasets
//	curl -s -X POST localhost:8080/v1/sessions \
//	    -d '{"dataset":"synth-nethept","eta_frac":0.05,"seed":7}'
//	curl -s -X POST localhost:8080/v1/sessions/s1/next
//	curl -s -X POST localhost:8080/v1/sessions/s1/observe -d '{"activated":[]}'
//	curl -s localhost:8080/v1/sessions/s1
//	curl -s -X DELETE localhost:8080/v1/sessions/s1
//
// Endpoints (full reference: docs/API.md):
//
//	GET    /healthz                   liveness probe + recovery/memory stats
//	GET    /metrics                   Prometheus-style metrics (sessions by phase, passivations, step latency)
//	GET    /v1/datasets               registered dataset names
//	POST   /v1/sessions               create a session
//	GET    /v1/sessions               list open sessions
//	GET    /v1/sessions/{id}          session status
//	POST   /v1/sessions/{id}/next     propose the next seed batch
//	POST   /v1/sessions/{id}/observe  report the batch's realized influence
//	DELETE /v1/sessions/{id}          close a session
//
// Sessions are deterministic per seed: two sessions created with equal
// bodies propose identical batches under identical observations. SIGINT
// or SIGTERM drains in-flight requests and releases every session.
//
// With -journal-dir set, sessions are durable: every state transition is
// write-ahead journaled (fsynced) before it is acknowledged, and on boot
// the server replays the directory's logs through the deterministic
// engine, resuming every session — even after a SIGKILL mid-round —
// exactly where its last acknowledged transition left it (docs/
// OPERATIONS.md describes the recovery procedure and directory layout).
//
// With -idle-ttl additionally set, sessions a client stops touching are
// passivated: their sampling engine and mRR pool (the dominant
// per-session memory) are released while the journal keeps their state,
// and the next API call reactivates them transparently by replaying the
// log — the reactivated session proposes byte-identical batches.
//
// Durable sessions additionally write verified state checkpoints into
// their logs every -checkpoint-every rounds (default 8, 0 = off), and
// by default compact the log past each one (-checkpoint-compact). A
// checkpoint turns recovery and reactivation from a full-history replay
// into restoring the snapshot plus replaying at most one interval's
// worth of rounds, and compaction bounds each log's disk footprint the
// same way. Checkpoints never change what a session proposes.
//
// Journal I/O failures are handled in layers (docs/OPERATIONS.md,
// "Failure modes & degradation"): transient append/fsync errors are
// retried with bounded exponential backoff inside the journal writer,
// a disk-full failure first triggers an emergency log compaction, and
// only a failure that survives both reaches the -durability policy —
// fail-stop (close the session, record the cause) or degrade (keep
// serving non-durably). A final failure also trips a journal-health
// breaker that answers new durable creates with 503 + Retry-After for
// -breaker-cooldown before re-probing. -fault-plan (or
// $ASMSERVE_FAULT_PLAN) arms deterministic fault injection at the
// journal I/O sites for chaos testing; never set it in production.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"asti/internal/fault"
	"asti/internal/graph"
	"asti/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		scale       = flag.Float64("scale", 0.2, "generation scale (0,1] for the synthetic datasets")
		graphPath   = flag.String("graph", "", "also register a graph from an edge-list file (name 'custom')")
		maxSessions = flag.Int("max-sessions", 1024, "maximum concurrently open sessions (0 = unlimited)")
		journalDir  = flag.String("journal-dir", "", "write-ahead-journal directory for durable sessions (empty = in-memory only)")
		idleTTL     = flag.Duration("idle-ttl", 0, "passivate durable sessions idle for this long, releasing their memory until the next call reactivates them from the journal (0 = never; requires -journal-dir)")
		ckptEvery   = flag.Int("checkpoint-every", serve.DefaultCheckpointEvery, "write a verified state checkpoint into each durable session's journal every K committed rounds, so recovery replays only the rounds after it (0 = checkpoints off, full replay)")
		ckptCompact = flag.Bool("checkpoint-compact", true, "after each verified checkpoint, compact the session's journal down to [created][checkpoint][suffix], bounding its disk footprint by the checkpoint interval")
		durability  = flag.String("durability", "fail-stop", "what a durable session does when its journal fails for good, after the writer's bounded retries and the disk-full emergency compaction: 'fail-stop' closes it with the cause recorded, 'degrade' keeps it serving non-durably (status reports durable=false plus the cause)")
		breakerCool = flag.Duration("breaker-cooldown", serve.DefaultBreakerCooldown, "after a final journal failure, reject new durable sessions with 503 for this long before re-probing the journal with the next create (0 = breaker off)")
		faultPlan   = flag.String("fault-plan", os.Getenv("ASMSERVE_FAULT_PLAN"), "TESTING ONLY: activate a deterministic fault-injection plan against the journal I/O sites, e.g. 'journal/append-sync:after=2:times=1:err=io' (defaults to $ASMSERVE_FAULT_PLAN; empty = no faults, zero overhead)")
	)
	flag.Parse()
	if err := run(*addr, *scale, *graphPath, *maxSessions, *journalDir, *idleTTL, *ckptEvery, *ckptCompact, *durability, *breakerCool, *faultPlan); err != nil {
		fmt.Fprintf(os.Stderr, "asmserve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, scale float64, graphPath string, maxSessions int, journalDir string, idleTTL time.Duration, ckptEvery int, ckptCompact bool, durability string, breakerCool time.Duration, faultPlan string) error {
	reg := serve.NewSyntheticRegistry(scale)
	if graphPath != "" {
		if err := reg.RegisterLoader("custom", func() (*graph.Graph, error) {
			return graph.LoadFile(graphPath)
		}); err != nil {
			return err
		}
	}
	var opts []serve.ManagerOption
	if journalDir != "" {
		opts = append(opts, serve.WithJournalDir(journalDir))
	}
	if idleTTL > 0 {
		if journalDir == "" {
			return errors.New("-idle-ttl requires -journal-dir (only journaled sessions can be passivated)")
		}
		opts = append(opts, serve.WithIdleTTL(idleTTL))
	}
	opts = append(opts, serve.WithCheckpointEvery(ckptEvery), serve.WithCompaction(ckptCompact))
	policy, err := serve.ParseDurabilityPolicy(durability)
	if err != nil {
		return err
	}
	opts = append(opts, serve.WithDurabilityPolicy(policy), serve.WithBreakerCooldown(breakerCool))
	if faultPlan != "" {
		plan, err := fault.Parse(faultPlan)
		if err != nil {
			return fmt.Errorf("-fault-plan: %w", err)
		}
		fault.Activate(plan)
		fmt.Fprintf(os.Stderr, "asmserve: FAULT INJECTION ACTIVE: %s\n", plan)
	}
	mgr := serve.NewManager(reg, maxSessions, opts...)
	defer mgr.CloseAll()

	recovered := 0
	if journalDir != "" {
		rep, err := mgr.Recover("") // the journal is already attached
		if err != nil {
			return err
		}
		for _, w := range rep.Warnings {
			fmt.Fprintf(os.Stderr, "asmserve: journal: %s\n", w)
		}
		recovered = rep.Recovered
		fmt.Printf("asmserve: journal %s: recovered %d session(s), %d closed, %d skipped, %d round(s) replayed, %d from checkpoint\n",
			journalDir, rep.Recovered, rep.Closed, rep.Skipped, rep.Rounds, rep.CheckpointRestores)
	}

	srv := &http.Server{
		Addr:        addr,
		Handler:     newHandler(mgr, recovered),
		ReadTimeout: 30 * time.Second,
		// WriteTimeout bounds how long a slow-reading client can pin a
		// handler goroutine (and, for /next, a session lock). It must
		// cover the slowest legitimate response — a proposal on a large
		// graph plus a reactivation replay — hence minutes, not seconds.
		WriteTimeout: 10 * time.Minute,
		// IdleTimeout reaps keep-alive connections parked between
		// requests; without it (and with ReadTimeout only arming per
		// request) an idle client holds its connection forever.
		IdleTimeout: 2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("asmserve: listening on %s (datasets: %v)\n", addr, reg.Names())
		errc <- srv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Printf("asmserve: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
