package main

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"asti/internal/serve"
)

// promlint_test.go validates GET /metrics against the Prometheus text
// exposition format (version 0.0.4) without importing a Prometheus
// client: every line must parse, every family must carry HELP and TYPE
// exactly once ahead of its samples, series must be unique and grouped
// by family, and histograms must be cumulative with le="+Inf" equal to
// their _count. A scrape that violates any of these is silently dropped
// or misread by real Prometheus servers — drift here is an outage of
// the monitoring contract, not a cosmetic bug.

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	// sampleRe splits `name{labels} value` / `name value` (no timestamps:
	// the server never emits them).
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	labelRe  = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)
)

// promSample is one parsed series sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// promFamily aggregates one metric family's declarations and samples.
type promFamily struct {
	help, typ string
	samples   []promSample
}

// familyOf maps a sample name to its family name: histogram samples
// drop the _bucket/_sum/_count suffix when the base is a declared
// histogram family.
func familyOf(name string, families map[string]*promFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f := families[base]; f != nil && f.typ == "histogram" {
				return base
			}
		}
	}
	return name
}

// parseExposition parses and structurally validates one exposition body,
// reporting violations through t.Errorf. It returns the families for
// content-level checks.
func parseExposition(t *testing.T, body string) map[string]*promFamily {
	t.Helper()
	families := map[string]*promFamily{}
	order := []string{} // family grouping order
	lastFamily := ""    // current sample group
	closed := map[string]bool{}
	seriesSeen := map[string]bool{}

	for i, line := range strings.Split(body, "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Errorf("line %d: malformed comment %q (only # HELP / # TYPE allowed)", lineNo, line)
				continue
			}
			name := parts[2]
			if !promNameRe.MatchString(name) {
				t.Errorf("line %d: invalid metric name %q", lineNo, name)
				continue
			}
			f := families[name]
			if f == nil {
				f = &promFamily{}
				families[name] = f
				order = append(order, name)
			}
			switch parts[1] {
			case "HELP":
				if f.help != "" {
					t.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				f.help = parts[3]
			case "TYPE":
				if f.typ != "" {
					t.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(f.samples) > 0 {
					t.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = parts[3]
				default:
					t.Errorf("line %d: unknown TYPE %q for %s", lineNo, parts[3], name)
				}
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: unparseable sample line %q", lineNo, line)
			continue
		}
		name, labelBlob, valueStr := m[1], m[3], m[4]
		value, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			t.Errorf("line %d: bad sample value %q: %v", lineNo, valueStr, err)
			continue
		}
		labels := map[string]string{}
		for _, lm := range labelRe.FindAllStringSubmatch(labelBlob, -1) {
			if !promLabelRe.MatchString(lm[1]) {
				t.Errorf("line %d: invalid label name %q", lineNo, lm[1])
			}
			if _, dup := labels[lm[1]]; dup {
				t.Errorf("line %d: duplicate label %q", lineNo, lm[1])
			}
			labels[lm[1]] = lm[2]
		}
		fam := familyOf(name, families)
		f := families[fam]
		if f == nil || f.typ == "" {
			t.Errorf("line %d: sample %s has no TYPE declaration", lineNo, name)
			if f == nil {
				f = &promFamily{}
				families[fam] = f
				order = append(order, fam)
			}
		}
		if f.help == "" {
			t.Errorf("line %d: sample %s has no HELP declaration", lineNo, name)
		}
		// Grouping: once a family's sample block ends, it must not resume.
		if fam != lastFamily {
			if closed[fam] {
				t.Errorf("line %d: family %s has non-contiguous samples", lineNo, fam)
			}
			if lastFamily != "" {
				closed[lastFamily] = true
			}
			lastFamily = fam
		}
		// Series uniqueness: name plus the sorted label set.
		keyParts := make([]string, 0, len(labels))
		for k, v := range labels {
			keyParts = append(keyParts, k+"="+v)
		}
		sort.Strings(keyParts)
		series := name + "{" + strings.Join(keyParts, ",") + "}"
		if seriesSeen[series] {
			t.Errorf("line %d: duplicate series %s", lineNo, series)
		}
		seriesSeen[series] = true
		f.samples = append(f.samples, promSample{name: name, labels: labels, value: value, line: lineNo})
	}

	for _, name := range order {
		f := families[name]
		if f.typ == "" {
			t.Errorf("family %s: missing TYPE", name)
		}
		if f.help == "" {
			t.Errorf("family %s: missing HELP", name)
		}
		if len(f.samples) == 0 {
			t.Errorf("family %s: declared but has no samples", name)
		}
		if f.typ == "counter" && !strings.HasSuffix(name, "_total") {
			t.Errorf("family %s: counter without the _total suffix", name)
		}
		for _, s := range f.samples {
			if f.typ == "counter" && s.value < 0 {
				t.Errorf("line %d: counter %s is negative (%g)", s.line, s.name, s.value)
			}
		}
		if f.typ == "histogram" {
			validateHistogram(t, name, f)
		}
	}
	return families
}

// validateHistogram checks one histogram family per label partition
// (all labels except le): buckets must be cumulative and non-decreasing,
// the +Inf bucket must exist and equal _count, and _sum/_count must each
// appear exactly once.
func validateHistogram(t *testing.T, name string, f *promFamily) {
	t.Helper()
	type part struct {
		buckets  []promSample
		inf      *promSample
		sum, cnt *promSample
	}
	parts := map[string]*part{}
	key := func(labels map[string]string) string {
		kv := make([]string, 0, len(labels))
		for k, v := range labels {
			if k != "le" {
				kv = append(kv, k+"="+v)
			}
		}
		sort.Strings(kv)
		return strings.Join(kv, ",")
	}
	for i := range f.samples {
		s := f.samples[i]
		k := key(s.labels)
		p := parts[k]
		if p == nil {
			p = &part{}
			parts[k] = p
		}
		switch {
		case s.name == name+"_bucket":
			if s.labels["le"] == "+Inf" {
				p.inf = &f.samples[i]
			} else {
				p.buckets = append(p.buckets, s)
			}
		case s.name == name+"_sum":
			if p.sum != nil {
				t.Errorf("line %d: duplicate %s_sum{%s}", s.line, name, k)
			}
			p.sum = &f.samples[i]
		case s.name == name+"_count":
			if p.cnt != nil {
				t.Errorf("line %d: duplicate %s_count{%s}", s.line, name, k)
			}
			p.cnt = &f.samples[i]
		}
	}
	for k, p := range parts {
		if p.inf == nil {
			t.Errorf("histogram %s{%s}: no le=\"+Inf\" bucket", name, k)
			continue
		}
		if p.cnt == nil || p.sum == nil {
			t.Errorf("histogram %s{%s}: missing _sum or _count", name, k)
			continue
		}
		prevLe := -1.0
		prev := -1.0
		for _, b := range p.buckets {
			le, err := strconv.ParseFloat(b.labels["le"], 64)
			if err != nil {
				t.Errorf("line %d: bad le %q", b.line, b.labels["le"])
				continue
			}
			if le <= prevLe {
				t.Errorf("line %d: histogram %s{%s} buckets out of order (le %g after %g)", b.line, name, k, le, prevLe)
			}
			prevLe = le
			if b.value < prev {
				t.Errorf("line %d: histogram %s{%s} not cumulative (%g after %g)", b.line, name, k, b.value, prev)
			}
			prev = b.value
		}
		if p.inf.value < prev {
			t.Errorf("histogram %s{%s}: +Inf bucket %g below last bucket %g", name, k, p.inf.value, prev)
		}
		if p.inf.value != p.cnt.value {
			t.Errorf("histogram %s{%s}: +Inf bucket %g != _count %g", name, k, p.inf.value, p.cnt.value)
		}
	}
}

// scrape fetches /metrics and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics: code %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics Content-Type %q, want text/plain version=0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsExpositionValid validates the scrape of a fresh server
// (all-zero state) and of a busy journaled one (sessions in several
// phases, passivation churn, step histograms populated) against the
// exposition grammar.
func TestMetricsExpositionValid(t *testing.T) {
	t.Run("fresh", func(t *testing.T) {
		e := newConfEnv(t, 16)
		fams := parseExposition(t, scrape(t, e.ts.URL))
		if len(fams) < 10 {
			t.Errorf("only %d families on a fresh server — exposition truncated?", len(fams))
		}
	})

	t.Run("busy", func(t *testing.T) {
		e := newConfEnv(t, 16, serve.WithJournalDir(t.TempDir()))
		// One session mid-campaign with a pending batch, one done, one
		// passivated, one deleted: every phase the census can report.
		e.pending()
		e.done()
		parked := e.create()
		id := parked[strings.LastIndex(parked, "/")+1:]
		if ok, err := e.mgr.Passivate(id); err != nil || !ok {
			t.Fatalf("Passivate: ok=%v err=%v", ok, err)
		}
		e.deleted()

		fams := parseExposition(t, scrape(t, e.ts.URL))
		// The families docs/API.md promises must all be present.
		for _, want := range []string{
			"asmserve_sessions",
			"asmserve_sessions_created_total",
			"asmserve_sessions_closed_total",
			"asmserve_proposals_total",
			"asmserve_observations_total",
			"asmserve_passivations_total",
			"asmserve_reactivations_total",
			"asmserve_checkpoints_total",
			"asmserve_checkpoint_failures_total",
			"asmserve_compactions_total",
			"asmserve_compacted_bytes_total",
			"asmserve_checkpoint_restores_total",
			"asmserve_journal_retries_total",
			"asmserve_journal_append_failures_total",
			"asmserve_journal_disk_full_total",
			"asmserve_emergency_compactions_total",
			"asmserve_sessions_poisoned_total",
			"asmserve_sessions_degraded",
			"asmserve_journal_breaker_open",
			"asmserve_pool_bytes",
			"asmserve_journal_bytes",
			"asmserve_step_seconds",
		} {
			if fams[want] == nil {
				t.Errorf("family %s missing from the exposition", want)
			}
		}
		// Spot-check values the fixture pinned down.
		expect := map[string]float64{
			`asmserve_sessions{phase="passivated"}`: 1,
			`asmserve_sessions_created_total`:       4,
			`asmserve_sessions_closed_total`:        1,
		}
		for _, f := range fams {
			for _, s := range f.samples {
				key := s.name
				if len(s.labels) > 0 {
					kv := make([]string, 0, len(s.labels))
					for k, v := range s.labels {
						kv = append(kv, fmt.Sprintf("%s=%q", k, v))
					}
					sort.Strings(kv)
					key += "{" + strings.Join(kv, ",") + "}"
				}
				if want, ok := expect[key]; ok && s.value != want {
					t.Errorf("%s = %g, want %g", key, s.value, want)
				}
				delete(expect, key)
			}
		}
		for key := range expect {
			t.Errorf("series %s not found in the exposition", key)
		}
		// The step histograms saw the fixtures' traffic.
		var nextCount float64 = -1
		for _, s := range fams["asmserve_step_seconds"].samples {
			if s.name == "asmserve_step_seconds_count" && s.labels["op"] == "next" {
				nextCount = s.value
			}
		}
		if nextCount < 2 {
			t.Errorf("asmserve_step_seconds_count{op=next} = %g, want >= 2", nextCount)
		}
	})
}
