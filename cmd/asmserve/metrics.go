package main

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"asti/internal/fault"
)

// stepBuckets are the latency histogram bucket bounds in seconds. One
// step spans a journal fsync (sub-ms to ~10ms depending on disk), a
// policy selection (ms to seconds at scale), or a reactivation replay
// (grows with rounds), so the buckets cover 1ms..10s log-ish.
var stepBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// histogram is a fixed-bucket latency histogram, safe for concurrent
// observation without locks (handlers record, the /metrics scrape
// reads; Prometheus semantics tolerate the snapshot being torn across
// counters).
type histogram struct {
	buckets  []atomic.Uint64 // per-bucket (non-cumulative) counts
	overflow atomic.Uint64   // observations beyond the last bound
	count    atomic.Uint64
	sumMicro atomic.Int64 // sum in microseconds (exact enough for latency)
}

// newHistogram returns a histogram over stepBuckets.
func newHistogram() *histogram {
	return &histogram{buckets: make([]atomic.Uint64, len(stepBuckets))}
}

// observe records one latency sample.
func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	placed := false
	for i, b := range stepBuckets {
		if s <= b {
			h.buckets[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.overflow.Add(1)
	}
	h.count.Add(1)
	h.sumMicro.Add(d.Microseconds())
}

// writeProm emits the histogram in Prometheus text format under name,
// with one fixed label (op="next"/"observe").
func (h *histogram) writeProm(w http.ResponseWriter, name, label, value string) {
	cum := uint64(0)
	for i, b := range stepBuckets {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, label, value, formatBound(b), cum)
	}
	cum += h.overflow.Load()
	fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, value, cum)
	fmt.Fprintf(w, "%s_sum{%s=%q} %g\n", name, label, value, float64(h.sumMicro.Load())/1e6)
	fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, value, h.count.Load())
}

// formatBound renders a bucket bound the way Prometheus expects
// (shortest float representation, no trailing zeros).
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// handleMetrics serves GET /metrics: a Prometheus-style text exposition
// of the session census (by phase), the passivation/reactivation
// counters, the memory gauges, and the step-latency histograms. Scraping
// it walks the session table once; it never touches idle clocks, so
// monitoring cannot keep a session alive.
func (sv *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	mt := sv.mgr.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintln(w, "# HELP asmserve_sessions Open sessions by lifecycle phase (passivated sessions are parked in the journal).")
	fmt.Fprintln(w, "# TYPE asmserve_sessions gauge")
	// Emit every known phase (zeros included) so dashboards see stable
	// series, then any phase the census has that we did not predict.
	known := []string{"propose", "observe", "done", "passivated"}
	seen := map[string]bool{}
	for _, ph := range known {
		seen[ph] = true
		fmt.Fprintf(w, "asmserve_sessions{phase=%q} %d\n", ph, mt.Phases[ph])
	}
	var extra []string
	for ph := range mt.Phases {
		if !seen[ph] {
			extra = append(extra, ph)
		}
	}
	sort.Strings(extra)
	for _, ph := range extra {
		fmt.Fprintf(w, "asmserve_sessions{phase=%q} %d\n", ph, mt.Phases[ph])
	}

	fmt.Fprintln(w, "# HELP asmserve_sessions_created_total Sessions created by clients since boot (recovered sessions excluded).")
	fmt.Fprintln(w, "# TYPE asmserve_sessions_created_total counter")
	fmt.Fprintf(w, "asmserve_sessions_created_total %d\n", mt.Creates)
	fmt.Fprintln(w, "# HELP asmserve_sessions_closed_total Sessions closed by clients since boot.")
	fmt.Fprintln(w, "# TYPE asmserve_sessions_closed_total counter")
	fmt.Fprintf(w, "asmserve_sessions_closed_total %d\n", mt.Closes)
	fmt.Fprintln(w, "# HELP asmserve_proposals_total Successful seed-batch proposals served since boot (recovery/reactivation replays excluded).")
	fmt.Fprintln(w, "# TYPE asmserve_proposals_total counter")
	fmt.Fprintf(w, "asmserve_proposals_total %d\n", mt.Proposals)
	fmt.Fprintln(w, "# HELP asmserve_observations_total Successful observation commits since boot (recovery/reactivation replays excluded).")
	fmt.Fprintln(w, "# TYPE asmserve_observations_total counter")
	fmt.Fprintf(w, "asmserve_observations_total %d\n", mt.Observations)
	fmt.Fprintln(w, "# HELP asmserve_passivations_total Idle sessions passivated to the write-ahead journal since boot.")
	fmt.Fprintln(w, "# TYPE asmserve_passivations_total counter")
	fmt.Fprintf(w, "asmserve_passivations_total %d\n", mt.Passivations)
	fmt.Fprintln(w, "# HELP asmserve_reactivations_total Passivated sessions reactivated by log replay since boot.")
	fmt.Fprintln(w, "# TYPE asmserve_reactivations_total counter")
	fmt.Fprintf(w, "asmserve_reactivations_total %d\n", mt.Reactivations)
	fmt.Fprintln(w, "# HELP asmserve_checkpoints_total Verified state checkpoints written into session journals since boot.")
	fmt.Fprintln(w, "# TYPE asmserve_checkpoints_total counter")
	fmt.Fprintf(w, "asmserve_checkpoints_total %d\n", mt.Checkpoints)
	fmt.Fprintln(w, "# HELP asmserve_checkpoint_failures_total Checkpoints skipped because write-time verification or encoding failed (the session continues journaling normally).")
	fmt.Fprintln(w, "# TYPE asmserve_checkpoint_failures_total counter")
	fmt.Fprintf(w, "asmserve_checkpoint_failures_total %d\n", mt.CheckpointFailures)
	fmt.Fprintln(w, "# HELP asmserve_compactions_total Session journals compacted down to their newest checkpoint since boot.")
	fmt.Fprintln(w, "# TYPE asmserve_compactions_total counter")
	fmt.Fprintf(w, "asmserve_compactions_total %d\n", mt.Compactions)
	fmt.Fprintln(w, "# HELP asmserve_compacted_bytes_total Journal bytes reclaimed by compaction since boot.")
	fmt.Fprintln(w, "# TYPE asmserve_compacted_bytes_total counter")
	fmt.Fprintf(w, "asmserve_compacted_bytes_total %d\n", mt.CompactedBytes)
	fmt.Fprintln(w, "# HELP asmserve_checkpoint_restores_total Recoveries and reactivations that restored a checkpoint and replayed only the suffix, instead of the full history.")
	fmt.Fprintln(w, "# TYPE asmserve_checkpoint_restores_total counter")
	fmt.Fprintf(w, "asmserve_checkpoint_restores_total %d\n", mt.CheckpointRestores)
	fmt.Fprintln(w, "# HELP asmserve_journal_retries_total Transient journal append/fsync failures absorbed by the writer's bounded retries.")
	fmt.Fprintln(w, "# TYPE asmserve_journal_retries_total counter")
	fmt.Fprintf(w, "asmserve_journal_retries_total %d\n", mt.Journal.AppendRetries)
	fmt.Fprintln(w, "# HELP asmserve_journal_append_failures_total Journal appends that failed for good (retry budget spent or non-retryable error class).")
	fmt.Fprintln(w, "# TYPE asmserve_journal_append_failures_total counter")
	fmt.Fprintf(w, "asmserve_journal_append_failures_total %d\n", mt.Journal.AppendFailures)
	fmt.Fprintln(w, "# HELP asmserve_journal_disk_full_total Journal append failures classified disk-full (each triggers an emergency compaction attempt).")
	fmt.Fprintln(w, "# TYPE asmserve_journal_disk_full_total counter")
	fmt.Fprintf(w, "asmserve_journal_disk_full_total %d\n", mt.Journal.DiskFull)
	fmt.Fprintln(w, "# HELP asmserve_journal_reopens_total Journal writer re-opens performed inside append retry loops.")
	fmt.Fprintln(w, "# TYPE asmserve_journal_reopens_total counter")
	fmt.Fprintf(w, "asmserve_journal_reopens_total %d\n", mt.Journal.Reopens)
	fmt.Fprintln(w, "# HELP asmserve_emergency_compactions_total On-demand journal compactions run in response to disk-full append failures.")
	fmt.Fprintln(w, "# TYPE asmserve_emergency_compactions_total counter")
	fmt.Fprintf(w, "asmserve_emergency_compactions_total %d\n", mt.EmergencyCompactions)
	fmt.Fprintln(w, "# HELP asmserve_sessions_poisoned_total Sessions closed by a final journal failure under the fail-stop durability policy.")
	fmt.Fprintln(w, "# TYPE asmserve_sessions_poisoned_total counter")
	fmt.Fprintf(w, "asmserve_sessions_poisoned_total %d\n", mt.Poisoned)
	fmt.Fprintln(w, "# HELP asmserve_sessions_degraded_total Sessions switched to non-durable serving by a final journal failure under the degrade policy.")
	fmt.Fprintln(w, "# TYPE asmserve_sessions_degraded_total counter")
	fmt.Fprintf(w, "asmserve_sessions_degraded_total %d\n", mt.Degraded)
	fmt.Fprintln(w, "# HELP asmserve_sessions_degraded Open sessions currently serving non-durably (their logs are frozen at the last durable transition).")
	fmt.Fprintln(w, "# TYPE asmserve_sessions_degraded gauge")
	fmt.Fprintf(w, "asmserve_sessions_degraded %d\n", mt.DegradedNow)
	breakerOpen := 0
	if !mt.JournalHealthy {
		breakerOpen = 1
	}
	fmt.Fprintln(w, "# HELP asmserve_journal_breaker_open 1 while the journal-health breaker is rejecting new durable sessions with 503.")
	fmt.Fprintln(w, "# TYPE asmserve_journal_breaker_open gauge")
	fmt.Fprintf(w, "asmserve_journal_breaker_open %d\n", breakerOpen)
	fmt.Fprintln(w, "# HELP asmserve_journal_breaker_trips_total Journal-health breaker closed-to-open transitions since boot.")
	fmt.Fprintln(w, "# TYPE asmserve_journal_breaker_trips_total counter")
	fmt.Fprintf(w, "asmserve_journal_breaker_trips_total %d\n", mt.BreakerTrips)
	fmt.Fprintln(w, "# HELP asmserve_fault_injections_total Faults injected by the active fault plan (0 unless -fault-plan armed one).")
	fmt.Fprintln(w, "# TYPE asmserve_fault_injections_total counter")
	fmt.Fprintf(w, "asmserve_fault_injections_total %d\n", fault.Injections())
	fmt.Fprintln(w, "# HELP asmserve_pool_bytes Estimated heap bytes held by live sessions' sampling pools.")
	fmt.Fprintln(w, "# TYPE asmserve_pool_bytes gauge")
	fmt.Fprintf(w, "asmserve_pool_bytes %d\n", mt.PoolBytes)
	fmt.Fprintln(w, "# HELP asmserve_journal_bytes On-disk bytes of the open sessions' write-ahead logs.")
	fmt.Fprintln(w, "# TYPE asmserve_journal_bytes gauge")
	fmt.Fprintf(w, "asmserve_journal_bytes %d\n", mt.JournalBytes)
	fmt.Fprintln(w, "# HELP asmserve_sessions_recovered Sessions rebuilt from the journal when this process booted.")
	fmt.Fprintln(w, "# TYPE asmserve_sessions_recovered gauge")
	fmt.Fprintf(w, "asmserve_sessions_recovered %d\n", sv.recovered)
	fmt.Fprintln(w, "# HELP asmserve_idle_ttl_seconds Configured idle-passivation TTL (0 = passivation off).")
	fmt.Fprintln(w, "# TYPE asmserve_idle_ttl_seconds gauge")
	fmt.Fprintf(w, "asmserve_idle_ttl_seconds %g\n", sv.mgr.IdleTTL().Seconds())

	fmt.Fprintln(w, "# HELP asmserve_step_seconds Latency of session steps (proposal fetch and observation commit), reactivation replay included.")
	fmt.Fprintln(w, "# TYPE asmserve_step_seconds histogram")
	sv.nextLat.writeProm(w, "asmserve_step_seconds", "op", "next")
	sv.observeLat.writeProm(w, "asmserve_step_seconds", "op", "observe")
}
