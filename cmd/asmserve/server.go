package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"asti/internal/diffusion"
	"asti/internal/serve"
)

// maxRequestBody caps JSON request bodies. Anything larger is rejected
// with 413 before it can balloon the decoder: an observe body of 8 MiB
// already holds roughly a million activated node ids, far beyond any
// per-wave delta the residual graph can absorb (and far beyond what the
// journal would accept as one record).
const maxRequestBody = 8 << 20

// createRequest is the body of POST /v1/sessions.
type createRequest struct {
	Dataset string  `json:"dataset"`
	Policy  string  `json:"policy,omitempty"`
	Model   string  `json:"model,omitempty"`
	Eta     int64   `json:"eta,omitempty"`
	EtaFrac float64 `json:"eta_frac,omitempty"`
	Epsilon float64 `json:"epsilon,omitempty"`
	Workers int     `json:"workers,omitempty"`
	// DisablePoolReuse opts the session out of cross-round sampling-pool
	// reuse (on by default; proposals are identical either way).
	DisablePoolReuse bool `json:"disable_pool_reuse,omitempty"`
	// SamplerVersion pins the sampler stream contract (0 = server
	// default, currently v2). Set 1 to reproduce pre-versioning
	// proposal streams byte-for-byte.
	SamplerVersion int    `json:"sampler_version,omitempty"`
	Seed           uint64 `json:"seed"`
}

// statusResponse mirrors serve.Status on the wire.
type statusResponse struct {
	ID             string  `json:"id"`
	Dataset        string  `json:"dataset"`
	SamplerVersion int     `json:"sampler_version"`
	Policy         string  `json:"policy"`
	Model          string  `json:"model"`
	N              int64   `json:"n"`
	Eta            int64   `json:"eta"`
	Phase          string  `json:"phase"`
	Round          int     `json:"round"`
	Pending        []int32 `json:"pending,omitempty"`
	Seeds          int     `json:"seeds"`
	Activated      int64   `json:"activated"`
	EtaI           int64   `json:"eta_i"`
	Done           bool    `json:"done"`
	Durable        bool    `json:"durable"`
	Passivations   int     `json:"passivations"`
	PoolBytes      int64   `json:"pool_bytes"`
	IdleSeconds    float64 `json:"idle_seconds"`
	SelectSeconds  float64 `json:"select_seconds"`
	// Checkpoints counts verified checkpoints this session has written;
	// LastCheckpointRound is the round the newest one snapshots (both are
	// restored from the checkpoint itself on recovery, so they are stable
	// across restarts).
	Checkpoints         int `json:"checkpoints"`
	LastCheckpointRound int `json:"last_checkpoint_round"`
	// Degraded marks a session serving non-durably after a final journal
	// failure under the degrade policy, with the cause in DegradeReason;
	// LastFailure records the newest journal failure either policy saw.
	// All three are omitted while empty/false, so fault-free sessions
	// serialize exactly as before (and identically across restarts).
	Degraded      bool   `json:"degraded,omitempty"`
	DegradeReason string `json:"degrade_reason,omitempty"`
	LastFailure   string `json:"last_failure,omitempty"`
}

// healthResponse is the body of GET /healthz.
type healthResponse struct {
	OK bool `json:"ok"`
	// Sessions is the number of currently open sessions, passivated
	// included.
	Sessions int `json:"sessions"`
	// Passivated is the number of sessions currently parked in the
	// journal by the idle sweep.
	Passivated int `json:"passivated"`
	// Passivations / Reactivations count idle-lifecycle events since
	// this process booted. (The memory gauges — pool and journal bytes —
	// need a session-table walk and live on /metrics; healthz stays O(1)
	// so probes never contend with request handlers.)
	Passivations  uint64 `json:"passivations"`
	Reactivations uint64 `json:"reactivations"`
	// Journal reports whether sessions are write-ahead journaled
	// (-journal-dir was set).
	Journal bool `json:"journal"`
	// RecoveredSessions counts sessions rebuilt from the journal when
	// this process booted.
	RecoveredSessions int `json:"recovered_sessions"`
	// IdleTTLSeconds is the configured passivation TTL (0 = off).
	IdleTTLSeconds float64 `json:"idle_ttl_seconds"`
	// Checkpoints / Compactions / CheckpointRestores count verified
	// checkpoints written, journal compactions past them, and
	// recoveries/reactivations that restored a checkpoint instead of
	// replaying the full history, since this process booted.
	Checkpoints        uint64 `json:"checkpoints"`
	Compactions        uint64 `json:"compactions"`
	CheckpointRestores uint64 `json:"checkpoint_restores"`
	// CheckpointEvery is the configured checkpoint interval in rounds
	// (0 = checkpoints off).
	CheckpointEvery int `json:"checkpoint_every"`
	// JournalHealthy is false while the journal-health breaker is open:
	// session creation is answering 503 until a probe create succeeds.
	// Always true on an unjournaled server.
	JournalHealthy bool `json:"journal_healthy"`
	// PoisonedTotal / DegradedTotal count sessions closed by a journal
	// failure (fail-stop policy) and sessions switched to non-durable
	// serving (degrade policy) since boot.
	PoisonedTotal uint64 `json:"poisoned_total"`
	DegradedTotal uint64 `json:"degraded_total"`
	// JournalRetries counts transient journal append/fsync failures that
	// were retried (and usually absorbed) inside the journal writer.
	JournalRetries uint64 `json:"journal_retries"`
	// DurabilityPolicy names the configured response to a final journal
	// failure: "fail-stop" or "degrade".
	DurabilityPolicy string `json:"durability_policy"`
}

// batchResponse is the body of POST /v1/sessions/{id}/next.
type batchResponse struct {
	ID    string  `json:"id"`
	Round int     `json:"round"`
	Seeds []int32 `json:"seeds"`
}

// observeRequest is the body of POST /v1/sessions/{id}/observe.
type observeRequest struct {
	Activated []int32 `json:"activated"`
}

// progressResponse is the body of a successful observe.
type progressResponse struct {
	ID             string `json:"id"`
	Round          int    `json:"round"`
	NewlyActivated int64  `json:"newly_activated"`
	Activated      int64  `json:"activated"`
	EtaI           int64  `json:"eta_i"`
	Done           bool   `json:"done"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

// server holds the handler state shared across requests: the session
// manager, the boot-time recovery count, and the step-latency
// histograms /metrics exposes.
type server struct {
	mgr        *serve.Manager
	recovered  int
	nextLat    *histogram
	observeLat *histogram
}

// newHandler builds the asmserve route table over one session manager.
// recovered is the boot-time recovery count reported by /healthz.
func newHandler(mgr *serve.Manager, recovered int) http.Handler {
	sv := &server{mgr: mgr, recovered: recovered, nextLat: newHistogram(), observeLat: newHistogram()}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", sv.handleHealthz)
	mux.HandleFunc("GET /metrics", sv.handleMetrics)
	mux.HandleFunc("GET /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"datasets": sv.mgr.Registry().Names()})
	})
	mux.HandleFunc("POST /v1/sessions", sv.handleCreate)
	mux.HandleFunc("GET /v1/sessions", sv.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", sv.handleStatus)
	mux.HandleFunc("POST /v1/sessions/{id}/next", sv.handleNext)
	mux.HandleFunc("POST /v1/sessions/{id}/observe", sv.handleObserve)
	mux.HandleFunc("DELETE /v1/sessions/{id}", sv.handleClose)
	return mux
}

func (sv *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := sv.mgr.Stats() // O(1): probes must not walk the session table
	writeJSON(w, http.StatusOK, healthResponse{
		OK:                 true,
		Sessions:           st.Sessions,
		Passivated:         st.Passivated,
		Passivations:       st.Passivations,
		Reactivations:      st.Reactivations,
		Journal:            sv.mgr.Journaled(),
		RecoveredSessions:  sv.recovered,
		IdleTTLSeconds:     sv.mgr.IdleTTL().Seconds(),
		Checkpoints:        st.Checkpoints,
		Compactions:        st.Compactions,
		CheckpointRestores: st.CheckpointRestores,
		CheckpointEvery:    sv.mgr.CheckpointEvery(),
		JournalHealthy:     st.JournalHealthy,
		PoisonedTotal:      st.Poisoned,
		DegradedTotal:      st.Degraded,
		JournalRetries:     st.Journal.AppendRetries,
		DurabilityPolicy:   sv.mgr.DurabilityPolicy().String(),
	})
}

func (sv *server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, bodyStatus(err), fmt.Errorf("bad request body: %w", err))
		return
	}
	model, err := parseModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s, err := sv.mgr.Create(serve.Config{
		Dataset:          req.Dataset,
		Policy:           req.Policy,
		Model:            model,
		Eta:              req.Eta,
		EtaFrac:          req.EtaFrac,
		Epsilon:          req.Epsilon,
		Workers:          req.Workers,
		DisablePoolReuse: req.DisablePoolReuse,
		SamplerVersion:   req.SamplerVersion,
		Seed:             req.Seed,
	})
	if err != nil {
		status := createStatus(err)
		sv.setRetryAfter(w, status, err)
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, toStatusResponse(s.Status()))
}

func (sv *server) handleList(w http.ResponseWriter, r *http.Request) {
	list := sv.mgr.List()
	out := make([]statusResponse, len(list))
	for i, st := range list {
		out[i] = toStatusResponse(st)
	}
	writeJSON(w, http.StatusOK, map[string][]statusResponse{"sessions": out})
}

func (sv *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	// The manager lookup reactivates a passivated session, so a status
	// probe always reports the live phase, never "passivated".
	s, err := sv.mgr.Session(r.PathValue("id"))
	if err != nil {
		writeError(w, lookupStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, toStatusResponse(s.Status()))
}

func (sv *server) handleNext(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t0 := time.Now()
	// Retry once through the manager if an idle sweep passivates the
	// session between our lookup and the call: the re-fetch replays the
	// journal and hands back a live session, making passivation invisible
	// to clients.
	for attempt := 0; ; attempt++ {
		s, err := sv.mgr.Session(id)
		if err != nil {
			writeError(w, lookupStatus(err), err)
			return
		}
		prop, err := s.Propose()
		if errors.Is(err, serve.ErrPassivated) && attempt == 0 {
			continue
		}
		if err != nil {
			status := stepStatus(err)
			sv.setRetryAfter(w, status, err)
			writeError(w, status, err)
			return
		}
		sv.nextLat.observe(time.Since(t0))
		writeJSON(w, http.StatusOK, batchResponse{ID: s.ID(), Round: prop.Round, Seeds: prop.Seeds})
		return
	}
}

func (sv *server) handleObserve(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req observeRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, bodyStatus(err), fmt.Errorf("bad request body: %w", err))
		return
	}
	t0 := time.Now()
	for attempt := 0; ; attempt++ {
		s, err := sv.mgr.Session(id)
		if err != nil {
			writeError(w, lookupStatus(err), err)
			return
		}
		prog, err := s.Observe(req.Activated)
		if errors.Is(err, serve.ErrPassivated) && attempt == 0 {
			continue
		}
		if err != nil {
			status := stepStatus(err)
			sv.setRetryAfter(w, status, err)
			writeError(w, status, err)
			return
		}
		sv.observeLat.observe(time.Since(t0))
		writeJSON(w, http.StatusOK, progressResponse{
			ID:             s.ID(),
			Round:          prog.Round,
			NewlyActivated: prog.NewlyActivated,
			Activated:      prog.Activated,
			EtaI:           prog.EtaI,
			Done:           prog.Done,
		})
		return
	}
}

func (sv *server) handleClose(w http.ResponseWriter, r *http.Request) {
	if err := sv.mgr.Close(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"closed": true})
}

// decodeJSON decodes one JSON value from the request body into v,
// strictly: bodies over maxRequestBody fail (mapped to 413 by
// bodyStatus), unknown fields fail (a typo'd "worker" must not silently
// run with the default worker count), and trailing data after the value
// fails (a concatenated second body is a client bug, not padding).
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra any
	if err := dec.Decode(&extra); !errors.Is(err, io.EOF) {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// bodyStatus maps a decodeJSON failure to its HTTP status: an oversized
// body is 413, everything else (syntax, unknown field, trailing data)
// is the caller's 400.
func bodyStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// parseModel maps the wire model name to a diffusion.Model ("" = IC).
func parseModel(name string) (diffusion.Model, error) {
	switch strings.ToUpper(name) {
	case "", "IC":
		return diffusion.IC, nil
	case "LT":
		return diffusion.LT, nil
	default:
		return 0, fmt.Errorf("unknown model %q (IC or LT)", name)
	}
}

// lookupStatus maps Manager.Session errors to HTTP statuses: an id not
// in the table is the caller's 404; anything else means the session
// exists but its reactivation replay failed (journal damaged on disk,
// environment drift) — a server-side 500 the operator must see, never a
// 404 that tells the client its campaign is gone.
func lookupStatus(err error) int {
	if errors.Is(err, serve.ErrUnknownSession) {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// createStatus maps session-creation errors to HTTP statuses: unknown
// dataset names are the caller's mistake (404), loader failures are
// server-side (500), an open journal-health breaker is a transient 503
// (the journal is failing; the breaker re-probes after its cooldown),
// everything else is a bad request.
func createStatus(err error) int {
	switch {
	case errors.Is(err, serve.ErrTooManySessions):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrJournalUnhealthy):
		return http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrUnknownDataset):
		return http.StatusNotFound
	case errors.Is(err, serve.ErrDatasetLoad):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// setRetryAfter stamps a Retry-After hint (in seconds) on retryable
// rejections, so well-behaved clients back off instead of hammering:
//   - breaker-open 503s advertise the time until the breaker re-probes
//     (rounded up, floor 1s);
//   - 429 (session limit) advertises a flat 5s — capacity frees when
//     some client closes a session, which we cannot predict;
//   - any other 503 (a passivation race lost twice) advertises 1s — the
//     next attempt's journal replay almost always wins.
func (sv *server) setRetryAfter(w http.ResponseWriter, status int, err error) {
	switch {
	case errors.Is(err, serve.ErrJournalUnhealthy):
		secs := int(sv.mgr.BreakerRetryAfter().Seconds() + 0.999)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	case status == http.StatusTooManyRequests:
		w.Header().Set("Retry-After", "5")
	case status == http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", "1")
	}
}

// stepStatus maps NextBatch/Observe errors to HTTP statuses: lifecycle
// ordering violations are conflicts, closed sessions are gone, a
// passivation lost twice in a row is a transient 503 (the handler
// already retried through the manager once), anything else (bad node
// ids, policy failure) is a bad request.
func stepStatus(err error) int {
	switch {
	case errors.Is(err, serve.ErrBatchPending),
		errors.Is(err, serve.ErrNoBatchPending),
		errors.Is(err, serve.ErrDone):
		return http.StatusConflict
	case errors.Is(err, serve.ErrClosed):
		return http.StatusGone
	case errors.Is(err, serve.ErrPassivated):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func toStatusResponse(st serve.Status) statusResponse {
	return statusResponse{
		ID:                  st.ID,
		Dataset:             st.Dataset,
		SamplerVersion:      st.SamplerVersion,
		Policy:              st.Policy,
		Model:               st.Model,
		N:                   st.N,
		Eta:                 st.Eta,
		Phase:               st.Phase,
		Round:               st.Round,
		Pending:             st.Pending,
		Seeds:               st.Seeds,
		Activated:           st.Activated,
		EtaI:                st.EtaI,
		Done:                st.Done,
		Durable:             st.Durable,
		Passivations:        st.Passivations,
		PoolBytes:           st.PoolBytes,
		IdleSeconds:         st.IdleSeconds,
		SelectSeconds:       st.SelectSeconds,
		Checkpoints:         st.Checkpoints,
		LastCheckpointRound: st.LastCheckpointRound,
		Degraded:            st.Degraded,
		DegradeReason:       st.DegradeReason,
		LastFailure:         st.LastFailure,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
