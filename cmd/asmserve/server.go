package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"asti/internal/diffusion"
	"asti/internal/serve"
)

// createRequest is the body of POST /v1/sessions.
type createRequest struct {
	Dataset string  `json:"dataset"`
	Policy  string  `json:"policy,omitempty"`
	Model   string  `json:"model,omitempty"`
	Eta     int64   `json:"eta,omitempty"`
	EtaFrac float64 `json:"eta_frac,omitempty"`
	Epsilon float64 `json:"epsilon,omitempty"`
	Workers int     `json:"workers,omitempty"`
	// DisablePoolReuse opts the session out of cross-round sampling-pool
	// reuse (on by default; proposals are identical either way).
	DisablePoolReuse bool   `json:"disable_pool_reuse,omitempty"`
	Seed             uint64 `json:"seed"`
}

// statusResponse mirrors serve.Status on the wire.
type statusResponse struct {
	ID            string  `json:"id"`
	Dataset       string  `json:"dataset"`
	Policy        string  `json:"policy"`
	Model         string  `json:"model"`
	N             int64   `json:"n"`
	Eta           int64   `json:"eta"`
	Phase         string  `json:"phase"`
	Round         int     `json:"round"`
	Pending       []int32 `json:"pending,omitempty"`
	Seeds         int     `json:"seeds"`
	Activated     int64   `json:"activated"`
	EtaI          int64   `json:"eta_i"`
	Done          bool    `json:"done"`
	Durable       bool    `json:"durable"`
	SelectSeconds float64 `json:"select_seconds"`
}

// healthResponse is the body of GET /healthz.
type healthResponse struct {
	OK bool `json:"ok"`
	// Sessions is the number of currently open sessions.
	Sessions int `json:"sessions"`
	// Journal reports whether sessions are write-ahead journaled
	// (-journal-dir was set).
	Journal bool `json:"journal"`
	// RecoveredSessions counts sessions rebuilt from the journal when
	// this process booted.
	RecoveredSessions int `json:"recovered_sessions"`
}

// batchResponse is the body of POST /v1/sessions/{id}/next.
type batchResponse struct {
	ID    string  `json:"id"`
	Round int     `json:"round"`
	Seeds []int32 `json:"seeds"`
}

// observeRequest is the body of POST /v1/sessions/{id}/observe.
type observeRequest struct {
	Activated []int32 `json:"activated"`
}

// progressResponse is the body of a successful observe.
type progressResponse struct {
	ID             string `json:"id"`
	Round          int    `json:"round"`
	NewlyActivated int64  `json:"newly_activated"`
	Activated      int64  `json:"activated"`
	EtaI           int64  `json:"eta_i"`
	Done           bool   `json:"done"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

// newHandler builds the asmserve route table over one session manager.
// recovered is the boot-time recovery count reported by /healthz.
func newHandler(mgr *serve.Manager, recovered int) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, healthResponse{
			OK:                true,
			Sessions:          mgr.Count(),
			Journal:           mgr.Journaled(),
			RecoveredSessions: recovered,
		})
	})
	mux.HandleFunc("GET /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"datasets": mgr.Registry().Names()})
	})
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req createRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		model, err := parseModel(req.Model)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s, err := mgr.Create(serve.Config{
			Dataset:          req.Dataset,
			Policy:           req.Policy,
			Model:            model,
			Eta:              req.Eta,
			EtaFrac:          req.EtaFrac,
			Epsilon:          req.Epsilon,
			Workers:          req.Workers,
			DisablePoolReuse: req.DisablePoolReuse,
			Seed:             req.Seed,
		})
		if err != nil {
			writeError(w, createStatus(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, toStatusResponse(s.Status()))
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		list := mgr.List()
		out := make([]statusResponse, len(list))
		for i, st := range list {
			out[i] = toStatusResponse(st)
		}
		writeJSON(w, http.StatusOK, map[string][]statusResponse{"sessions": out})
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		s, err := mgr.Session(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, toStatusResponse(s.Status()))
	})
	mux.HandleFunc("POST /v1/sessions/{id}/next", func(w http.ResponseWriter, r *http.Request) {
		s, err := mgr.Session(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		prop, err := s.Propose()
		if err != nil {
			writeError(w, stepStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, batchResponse{ID: s.ID(), Round: prop.Round, Seeds: prop.Seeds})
	})
	mux.HandleFunc("POST /v1/sessions/{id}/observe", func(w http.ResponseWriter, r *http.Request) {
		s, err := mgr.Session(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		var req observeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		prog, err := s.Observe(req.Activated)
		if err != nil {
			writeError(w, stepStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, progressResponse{
			ID:             s.ID(),
			Round:          prog.Round,
			NewlyActivated: prog.NewlyActivated,
			Activated:      prog.Activated,
			EtaI:           prog.EtaI,
			Done:           prog.Done,
		})
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := mgr.Close(r.PathValue("id")); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"closed": true})
	})
	return mux
}

// parseModel maps the wire model name to a diffusion.Model ("" = IC).
func parseModel(name string) (diffusion.Model, error) {
	switch strings.ToUpper(name) {
	case "", "IC":
		return diffusion.IC, nil
	case "LT":
		return diffusion.LT, nil
	default:
		return 0, fmt.Errorf("unknown model %q (IC or LT)", name)
	}
}

// createStatus maps session-creation errors to HTTP statuses: unknown
// dataset names are the caller's mistake (404), loader failures are
// server-side (500), everything else is a bad request.
func createStatus(err error) int {
	switch {
	case errors.Is(err, serve.ErrTooManySessions):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrUnknownDataset):
		return http.StatusNotFound
	case errors.Is(err, serve.ErrDatasetLoad):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// stepStatus maps NextBatch/Observe errors to HTTP statuses: lifecycle
// ordering violations are conflicts, closed sessions are gone, anything
// else (bad node ids, policy failure) is a bad request.
func stepStatus(err error) int {
	switch {
	case errors.Is(err, serve.ErrBatchPending),
		errors.Is(err, serve.ErrNoBatchPending),
		errors.Is(err, serve.ErrDone):
		return http.StatusConflict
	case errors.Is(err, serve.ErrClosed):
		return http.StatusGone
	default:
		return http.StatusBadRequest
	}
}

func toStatusResponse(st serve.Status) statusResponse {
	return statusResponse{
		ID:            st.ID,
		Dataset:       st.Dataset,
		Policy:        st.Policy,
		Model:         st.Model,
		N:             st.N,
		Eta:           st.Eta,
		Phase:         st.Phase,
		Round:         st.Round,
		Pending:       st.Pending,
		Seeds:         st.Seeds,
		Activated:     st.Activated,
		EtaI:          st.EtaI,
		Done:          st.Done,
		Durable:       st.Durable,
		SelectSeconds: st.SelectSeconds,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
