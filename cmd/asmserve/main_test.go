package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"asti/internal/gen"
	"asti/internal/graph"
	"asti/internal/serve"
)

// testServer starts an httptest server over a small synthetic dataset.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	reg := serve.NewRegistry()
	err := reg.RegisterLoader("tiny", func() (*graph.Graph, error) {
		spec, err := gen.Dataset("synth-nethept")
		if err != nil {
			return nil, err
		}
		return spec.Generate(0.05)
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr := serve.NewManager(reg, 16)
	ts := httptest.NewServer(newHandler(mgr, 0))
	t.Cleanup(func() {
		ts.Close()
		mgr.CloseAll()
	})
	return ts
}

// call makes one JSON request and decodes the response into out.
func call(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestRoundTrip drives one session through the full HTTP lifecycle.
func TestRoundTrip(t *testing.T) {
	ts := testServer(t)

	var health healthResponse
	if code := call(t, "GET", ts.URL+"/healthz", nil, &health); code != 200 || !health.OK {
		t.Fatalf("healthz: code %d body %+v", code, health)
	}
	if health.Journal || health.RecoveredSessions != 0 || health.Sessions != 0 {
		t.Fatalf("in-memory healthz %+v", health)
	}
	var datasets map[string][]string
	if code := call(t, "GET", ts.URL+"/v1/datasets", nil, &datasets); code != 200 {
		t.Fatalf("datasets: code %d", code)
	}
	if got := datasets["datasets"]; len(got) != 1 || got[0] != "tiny" {
		t.Fatalf("datasets = %v", got)
	}

	var st statusResponse
	code := call(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", EtaFrac: 0.05, Seed: 7}, &st)
	if code != http.StatusCreated {
		t.Fatalf("create: code %d", code)
	}
	if st.ID == "" || st.Phase != "propose" || st.Eta < 1 {
		t.Fatalf("create status %+v", st)
	}
	base := ts.URL + "/v1/sessions/" + st.ID

	// Observe before next → 409.
	var errBody errorResponse
	if code := call(t, "POST", base+"/observe", observeRequest{}, &errBody); code != http.StatusConflict {
		t.Errorf("observe-before-next: code %d (%s), want 409", code, errBody.Error)
	}

	// Drive to completion; observations report only the seeds themselves
	// (a world where nobody relays the message), so the loop needs η seeds.
	var rounds int
	for {
		var batch batchResponse
		if code := call(t, "POST", base+"/next", nil, &batch); code != 200 {
			t.Fatalf("next (round %d): code %d", rounds+1, code)
		}
		if len(batch.Seeds) == 0 {
			t.Fatal("empty batch")
		}
		var prog progressResponse
		if code := call(t, "POST", base+"/observe", observeRequest{Activated: batch.Seeds}, &prog); code != 200 {
			t.Fatalf("observe: code %d", code)
		}
		rounds++
		if prog.Done {
			break
		}
		if rounds > int(st.Eta)+1 {
			t.Fatalf("no convergence after %d rounds", rounds)
		}
	}

	// Next after done → 409; status shows done; list has the session.
	if code := call(t, "POST", base+"/next", nil, &errBody); code != http.StatusConflict {
		t.Errorf("next-after-done: code %d, want 409", code)
	}
	if code := call(t, "GET", base, nil, &st); code != 200 || !st.Done || st.Phase != "done" {
		t.Errorf("status after done: code %d %+v", code, st)
	}
	var list map[string][]statusResponse
	if code := call(t, "GET", ts.URL+"/v1/sessions", nil, &list); code != 200 || len(list["sessions"]) != 1 {
		t.Errorf("list: code %d %v", code, list)
	}

	// Close; step after close → 410; status → 404.
	if code := call(t, "DELETE", base, nil, nil); code != 200 {
		t.Errorf("close: code %d", code)
	}
	if code := call(t, "GET", base, nil, &errBody); code != http.StatusNotFound {
		t.Errorf("status after close: code %d, want 404", code)
	}
	if code := call(t, "DELETE", base, nil, &errBody); code != http.StatusNotFound {
		t.Errorf("double close: code %d, want 404", code)
	}
}

// TestParallelSessionsDeterministic is the acceptance criterion: two
// sessions created over HTTP with the same dataset and seed, stepped
// concurrently, propose identical seed batches.
func TestParallelSessionsDeterministic(t *testing.T) {
	ts := testServer(t)

	const sessions = 2
	const steps = 3
	seqs := make([][][]int32, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var st statusResponse
			if code := call(t, "POST", ts.URL+"/v1/sessions",
				createRequest{Dataset: "tiny", EtaFrac: 0.3, Seed: 42}, &st); code != http.StatusCreated {
				t.Errorf("create: code %d", code)
				return
			}
			base := ts.URL + "/v1/sessions/" + st.ID
			for s := 0; s < steps; s++ {
				var batch batchResponse
				if code := call(t, "POST", base+"/next", nil, &batch); code != 200 {
					t.Errorf("next: code %d", code)
					return
				}
				seqs[i] = append(seqs[i], batch.Seeds)
				var prog progressResponse
				// Identical observations: only the seeds activate.
				if code := call(t, "POST", base+"/observe", observeRequest{Activated: batch.Seeds}, &prog); code != 200 {
					t.Errorf("observe: code %d", code)
					return
				}
				if prog.Done {
					break
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < sessions; i++ {
		if fmt.Sprint(seqs[i]) != fmt.Sprint(seqs[0]) {
			t.Errorf("session %d proposed %v, session 0 proposed %v", i, seqs[i], seqs[0])
		}
	}
}

func TestCreateErrors(t *testing.T) {
	ts := testServer(t)
	var errBody errorResponse
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Dataset: "nope"}, &errBody); code != http.StatusNotFound {
		t.Errorf("unknown dataset: code %d, want 404", code)
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", Model: "XYZ"}, &errBody); code != http.StatusBadRequest {
		t.Errorf("bad model: code %d, want 400", code)
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", Policy: "nope"}, &errBody); code != http.StatusBadRequest {
		t.Errorf("bad policy: code %d, want 400", code)
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions/s99/next", nil, &errBody); code != http.StatusNotFound {
		t.Errorf("unknown session: code %d, want 404", code)
	}
}

// TestRestartRecovery is the HTTP-level kill-and-restart test: a
// journaled session driven over one server instance, whose process
// "dies" (the manager is abandoned un-closed, as SIGKILL leaves it),
// resumes on a second instance over the same journal directory with
// identical status and keeps proposing.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	newInstance := func(recover bool) (*httptest.Server, *serve.Manager, int) {
		reg := serve.NewRegistry()
		err := reg.RegisterLoader("tiny", func() (*graph.Graph, error) {
			spec, err := gen.Dataset("synth-nethept")
			if err != nil {
				return nil, err
			}
			return spec.Generate(0.05)
		})
		if err != nil {
			t.Fatal(err)
		}
		mgr := serve.NewManager(reg, 16, serve.WithJournalDir(dir))
		recovered := 0
		if recover {
			rep, err := mgr.Recover("")
			if err != nil {
				t.Fatal(err)
			}
			recovered = rep.Recovered
		}
		ts := httptest.NewServer(newHandler(mgr, recovered))
		t.Cleanup(ts.Close)
		return ts, mgr, recovered
	}

	// First life: create a session and run two rounds.
	ts1, _, _ := newInstance(false)
	var st statusResponse
	if code := call(t, "POST", ts1.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", EtaFrac: 0.3, Seed: 11, Workers: 1}, &st); code != http.StatusCreated {
		t.Fatalf("create: code %d", code)
	}
	if !st.Durable {
		t.Fatalf("journaled session not durable: %+v", st)
	}
	base1 := ts1.URL + "/v1/sessions/" + st.ID
	for r := 0; r < 2; r++ {
		var batch batchResponse
		if code := call(t, "POST", base1+"/next", nil, &batch); code != 200 {
			t.Fatalf("next: code %d", code)
		}
		var prog progressResponse
		if code := call(t, "POST", base1+"/observe", observeRequest{Activated: batch.Seeds}, &prog); code != 200 {
			t.Fatalf("observe: code %d", code)
		}
		if prog.Done {
			t.Skip("campaign finished before the crash point")
		}
	}
	var before statusResponse
	if code := call(t, "GET", base1, nil, &before); code != 200 {
		t.Fatalf("status: code %d", code)
	}
	ts1.Close() // the "crash": no DELETE, no CloseAll

	// Second life: recover and compare.
	ts2, _, recovered := newInstance(true)
	if recovered != 1 {
		t.Fatalf("recovered %d sessions, want 1", recovered)
	}
	var health healthResponse
	if code := call(t, "GET", ts2.URL+"/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz: code %d", code)
	}
	if !health.Journal || health.RecoveredSessions != 1 || health.Sessions != 1 {
		t.Fatalf("healthz after recovery %+v", health)
	}
	var after statusResponse
	if code := call(t, "GET", ts2.URL+"/v1/sessions/"+before.ID, nil, &after); code != 200 {
		t.Fatalf("status after restart: code %d", code)
	}
	// Identical status up to SelectSeconds (replay re-runs selection, so
	// the timing differs; everything the client observes must not).
	before.SelectSeconds, after.SelectSeconds = 0, 0
	if fmt.Sprintf("%+v", before) != fmt.Sprintf("%+v", after) {
		t.Errorf("status diverged across restart:\n before %+v\n after  %+v", before, after)
	}
	// The session keeps working.
	var batch batchResponse
	if code := call(t, "POST", ts2.URL+"/v1/sessions/"+before.ID+"/next", nil, &batch); code != 200 {
		t.Fatalf("next after restart: code %d", code)
	}
	if len(batch.Seeds) == 0 || batch.Round != before.Round+1 {
		t.Errorf("post-restart batch %+v", batch)
	}
}

// TestDatasetLoadFailure maps loader errors (a server-side problem) to
// 500, not to the 400 class reserved for caller mistakes.
func TestDatasetLoadFailure(t *testing.T) {
	reg := serve.NewRegistry()
	if err := reg.RegisterLoader("bad", func() (*graph.Graph, error) {
		return nil, errors.New("disk gone")
	}); err != nil {
		t.Fatal(err)
	}
	mgr := serve.NewManager(reg, 4)
	ts := httptest.NewServer(newHandler(mgr, 0))
	defer ts.Close()
	var errBody errorResponse
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Dataset: "bad"}, &errBody); code != http.StatusInternalServerError {
		t.Errorf("failing loader: code %d (%s), want 500", code, errBody.Error)
	}
}
