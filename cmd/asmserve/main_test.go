package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"asti/internal/fault"
	"asti/internal/gen"
	"asti/internal/graph"
	"asti/internal/serve"
)

// testServer starts an httptest server over a small synthetic dataset.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	reg := serve.NewRegistry()
	err := reg.RegisterLoader("tiny", func() (*graph.Graph, error) {
		spec, err := gen.Dataset("synth-nethept")
		if err != nil {
			return nil, err
		}
		return spec.Generate(0.05)
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr := serve.NewManager(reg, 16)
	ts := httptest.NewServer(newHandler(mgr, 0))
	t.Cleanup(func() {
		ts.Close()
		mgr.CloseAll()
	})
	return ts
}

// call makes one JSON request and decodes the response into out.
func call(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestRoundTrip drives one session through the full HTTP lifecycle.
func TestRoundTrip(t *testing.T) {
	ts := testServer(t)

	var health healthResponse
	if code := call(t, "GET", ts.URL+"/healthz", nil, &health); code != 200 || !health.OK {
		t.Fatalf("healthz: code %d body %+v", code, health)
	}
	if health.Journal || health.RecoveredSessions != 0 || health.Sessions != 0 {
		t.Fatalf("in-memory healthz %+v", health)
	}
	var datasets map[string][]string
	if code := call(t, "GET", ts.URL+"/v1/datasets", nil, &datasets); code != 200 {
		t.Fatalf("datasets: code %d", code)
	}
	if got := datasets["datasets"]; len(got) != 1 || got[0] != "tiny" {
		t.Fatalf("datasets = %v", got)
	}

	var st statusResponse
	code := call(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", EtaFrac: 0.05, Seed: 7}, &st)
	if code != http.StatusCreated {
		t.Fatalf("create: code %d", code)
	}
	if st.ID == "" || st.Phase != "propose" || st.Eta < 1 {
		t.Fatalf("create status %+v", st)
	}
	base := ts.URL + "/v1/sessions/" + st.ID

	// Observe before next → 409.
	var errBody errorResponse
	if code := call(t, "POST", base+"/observe", observeRequest{}, &errBody); code != http.StatusConflict {
		t.Errorf("observe-before-next: code %d (%s), want 409", code, errBody.Error)
	}

	// Drive to completion; observations report only the seeds themselves
	// (a world where nobody relays the message), so the loop needs η seeds.
	var rounds int
	for {
		var batch batchResponse
		if code := call(t, "POST", base+"/next", nil, &batch); code != 200 {
			t.Fatalf("next (round %d): code %d", rounds+1, code)
		}
		if len(batch.Seeds) == 0 {
			t.Fatal("empty batch")
		}
		var prog progressResponse
		if code := call(t, "POST", base+"/observe", observeRequest{Activated: batch.Seeds}, &prog); code != 200 {
			t.Fatalf("observe: code %d", code)
		}
		rounds++
		if prog.Done {
			break
		}
		if rounds > int(st.Eta)+1 {
			t.Fatalf("no convergence after %d rounds", rounds)
		}
	}

	// Next after done → 409; status shows done; list has the session.
	if code := call(t, "POST", base+"/next", nil, &errBody); code != http.StatusConflict {
		t.Errorf("next-after-done: code %d, want 409", code)
	}
	if code := call(t, "GET", base, nil, &st); code != 200 || !st.Done || st.Phase != "done" {
		t.Errorf("status after done: code %d %+v", code, st)
	}
	var list map[string][]statusResponse
	if code := call(t, "GET", ts.URL+"/v1/sessions", nil, &list); code != 200 || len(list["sessions"]) != 1 {
		t.Errorf("list: code %d %v", code, list)
	}

	// Close; step after close → 410; status → 404.
	if code := call(t, "DELETE", base, nil, nil); code != 200 {
		t.Errorf("close: code %d", code)
	}
	if code := call(t, "GET", base, nil, &errBody); code != http.StatusNotFound {
		t.Errorf("status after close: code %d, want 404", code)
	}
	if code := call(t, "DELETE", base, nil, &errBody); code != http.StatusNotFound {
		t.Errorf("double close: code %d, want 404", code)
	}
}

// TestParallelSessionsDeterministic is the acceptance criterion: two
// sessions created over HTTP with the same dataset and seed, stepped
// concurrently, propose identical seed batches.
func TestParallelSessionsDeterministic(t *testing.T) {
	ts := testServer(t)

	const sessions = 2
	const steps = 3
	seqs := make([][][]int32, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var st statusResponse
			if code := call(t, "POST", ts.URL+"/v1/sessions",
				createRequest{Dataset: "tiny", EtaFrac: 0.3, Seed: 42}, &st); code != http.StatusCreated {
				t.Errorf("create: code %d", code)
				return
			}
			base := ts.URL + "/v1/sessions/" + st.ID
			for s := 0; s < steps; s++ {
				var batch batchResponse
				if code := call(t, "POST", base+"/next", nil, &batch); code != 200 {
					t.Errorf("next: code %d", code)
					return
				}
				seqs[i] = append(seqs[i], batch.Seeds)
				var prog progressResponse
				// Identical observations: only the seeds activate.
				if code := call(t, "POST", base+"/observe", observeRequest{Activated: batch.Seeds}, &prog); code != 200 {
					t.Errorf("observe: code %d", code)
					return
				}
				if prog.Done {
					break
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < sessions; i++ {
		if fmt.Sprint(seqs[i]) != fmt.Sprint(seqs[0]) {
			t.Errorf("session %d proposed %v, session 0 proposed %v", i, seqs[i], seqs[0])
		}
	}
}

func TestCreateErrors(t *testing.T) {
	ts := testServer(t)
	var errBody errorResponse
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Dataset: "nope"}, &errBody); code != http.StatusNotFound {
		t.Errorf("unknown dataset: code %d, want 404", code)
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", Model: "XYZ"}, &errBody); code != http.StatusBadRequest {
		t.Errorf("bad model: code %d, want 400", code)
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", Policy: "nope"}, &errBody); code != http.StatusBadRequest {
		t.Errorf("bad policy: code %d, want 400", code)
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions/s99/next", nil, &errBody); code != http.StatusNotFound {
		t.Errorf("unknown session: code %d, want 404", code)
	}
}

// TestRestartRecovery is the HTTP-level kill-and-restart test: a
// journaled session driven over one server instance, whose process
// "dies" (the manager is abandoned un-closed, as SIGKILL leaves it),
// resumes on a second instance over the same journal directory with
// identical status and keeps proposing.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	newInstance := func(recover bool) (*httptest.Server, *serve.Manager, int) {
		reg := serve.NewRegistry()
		err := reg.RegisterLoader("tiny", func() (*graph.Graph, error) {
			spec, err := gen.Dataset("synth-nethept")
			if err != nil {
				return nil, err
			}
			return spec.Generate(0.05)
		})
		if err != nil {
			t.Fatal(err)
		}
		mgr := serve.NewManager(reg, 16, serve.WithJournalDir(dir))
		recovered := 0
		if recover {
			rep, err := mgr.Recover("")
			if err != nil {
				t.Fatal(err)
			}
			recovered = rep.Recovered
		}
		ts := httptest.NewServer(newHandler(mgr, recovered))
		t.Cleanup(ts.Close)
		return ts, mgr, recovered
	}

	// First life: create a session and run two rounds.
	ts1, _, _ := newInstance(false)
	var st statusResponse
	if code := call(t, "POST", ts1.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", EtaFrac: 0.3, Seed: 11, Workers: 1}, &st); code != http.StatusCreated {
		t.Fatalf("create: code %d", code)
	}
	if !st.Durable {
		t.Fatalf("journaled session not durable: %+v", st)
	}
	base1 := ts1.URL + "/v1/sessions/" + st.ID
	for r := 0; r < 2; r++ {
		var batch batchResponse
		if code := call(t, "POST", base1+"/next", nil, &batch); code != 200 {
			t.Fatalf("next: code %d", code)
		}
		var prog progressResponse
		if code := call(t, "POST", base1+"/observe", observeRequest{Activated: batch.Seeds}, &prog); code != 200 {
			t.Fatalf("observe: code %d", code)
		}
		if prog.Done {
			t.Skip("campaign finished before the crash point")
		}
	}
	var before statusResponse
	if code := call(t, "GET", base1, nil, &before); code != 200 {
		t.Fatalf("status: code %d", code)
	}
	ts1.Close() // the "crash": no DELETE, no CloseAll

	// Second life: recover and compare.
	ts2, _, recovered := newInstance(true)
	if recovered != 1 {
		t.Fatalf("recovered %d sessions, want 1", recovered)
	}
	var health healthResponse
	if code := call(t, "GET", ts2.URL+"/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz: code %d", code)
	}
	if !health.Journal || health.RecoveredSessions != 1 || health.Sessions != 1 {
		t.Fatalf("healthz after recovery %+v", health)
	}
	var after statusResponse
	if code := call(t, "GET", ts2.URL+"/v1/sessions/"+before.ID, nil, &after); code != 200 {
		t.Fatalf("status after restart: code %d", code)
	}
	// Identical status up to SelectSeconds and IdleSeconds (replay
	// re-runs selection and resets the idle clock, so the timings differ;
	// everything else the client observes must not — pool_bytes included,
	// since the replayed pool is byte-identical to the original).
	before.SelectSeconds, after.SelectSeconds = 0, 0
	before.IdleSeconds, after.IdleSeconds = 0, 0
	if fmt.Sprintf("%+v", before) != fmt.Sprintf("%+v", after) {
		t.Errorf("status diverged across restart:\n before %+v\n after  %+v", before, after)
	}
	// The session keeps working.
	var batch batchResponse
	if code := call(t, "POST", ts2.URL+"/v1/sessions/"+before.ID+"/next", nil, &batch); code != 200 {
		t.Fatalf("next after restart: code %d", code)
	}
	if len(batch.Seeds) == 0 || batch.Round != before.Round+1 {
		t.Errorf("post-restart batch %+v", batch)
	}
}

// TestDatasetLoadFailure maps loader errors (a server-side problem) to
// 500, not to the 400 class reserved for caller mistakes.
func TestDatasetLoadFailure(t *testing.T) {
	reg := serve.NewRegistry()
	if err := reg.RegisterLoader("bad", func() (*graph.Graph, error) {
		return nil, errors.New("disk gone")
	}); err != nil {
		t.Fatal(err)
	}
	mgr := serve.NewManager(reg, 4)
	ts := httptest.NewServer(newHandler(mgr, 0))
	defer ts.Close()
	var errBody errorResponse
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Dataset: "bad"}, &errBody); code != http.StatusInternalServerError {
		t.Errorf("failing loader: code %d (%s), want 500", code, errBody.Error)
	}
}

// rawPost posts raw bytes (no JSON encoding) and returns the status code
// plus decoded error body, for the strict-parsing tests.
func rawPost(t *testing.T, url string, body []byte) (int, errorResponse) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var errBody errorResponse
	_ = json.NewDecoder(resp.Body).Decode(&errBody)
	return resp.StatusCode, errBody
}

// TestStrictRequestParsing pins the hardened request decoding: unknown
// fields (typo'd "worker"), trailing garbage after the JSON value, and
// syntactically broken bodies are 400; oversized bodies are 413.
func TestStrictRequestParsing(t *testing.T) {
	ts := testServer(t)

	if code, e := rawPost(t, ts.URL+"/v1/sessions",
		[]byte(`{"dataset":"tiny","worker":4}`)); code != http.StatusBadRequest {
		t.Errorf("unknown field: code %d (%s), want 400", code, e.Error)
	}
	if code, e := rawPost(t, ts.URL+"/v1/sessions",
		[]byte(`{"dataset":"tiny","seed":7} trailing-garbage`)); code != http.StatusBadRequest {
		t.Errorf("trailing garbage: code %d (%s), want 400", code, e.Error)
	}
	if code, e := rawPost(t, ts.URL+"/v1/sessions",
		[]byte(`{"dataset":`)); code != http.StatusBadRequest {
		t.Errorf("broken body: code %d (%s), want 400", code, e.Error)
	}

	// A session to aim the observe-body tests at.
	var st statusResponse
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", EtaFrac: 0.05, Seed: 1}, &st); code != http.StatusCreated {
		t.Fatalf("create: code %d", code)
	}
	base := ts.URL + "/v1/sessions/" + st.ID
	if code, e := rawPost(t, base+"/observe",
		[]byte(`{"activated":[],"activate":[]}`)); code != http.StatusBadRequest {
		t.Errorf("unknown observe field: code %d (%s), want 400", code, e.Error)
	}
	// An observe body past the 8 MiB cap: ~1.1M node ids. The decoder
	// must cut it off with 413 without reading it all.
	big := bytes.Repeat([]byte("1234567,"), (8<<20)/8+1)
	body := append([]byte(`{"activated":[`), big...)
	body = append(body, []byte(`1]}`)...)
	if code, e := rawPost(t, base+"/observe", body); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: code %d (%s), want 413", code, e.Error)
	}
	// The session survives all of the above rejected bodies.
	var batch batchResponse
	if code := call(t, "POST", base+"/next", nil, &batch); code != 200 {
		t.Errorf("next after rejected bodies: code %d", code)
	}
}

// TestMetricsEndpoint smoke-tests the Prometheus exposition: after one
// step, /metrics reports the session census, the step histograms, and
// the memory gauges.
func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t)
	var st statusResponse
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", EtaFrac: 0.3, Seed: 9}, &st); code != http.StatusCreated {
		t.Fatalf("create: code %d", code)
	}
	base := ts.URL + "/v1/sessions/" + st.ID
	var batch batchResponse
	if code := call(t, "POST", base+"/next", nil, &batch); code != 200 {
		t.Fatalf("next: code %d", code)
	}
	var prog progressResponse
	if code := call(t, "POST", base+"/observe", observeRequest{Activated: batch.Seeds}, &prog); code != 200 {
		t.Fatalf("observe: code %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics: code %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`asmserve_sessions{phase="propose"} 1`,
		`asmserve_sessions{phase="passivated"} 0`,
		`asmserve_passivations_total 0`,
		`asmserve_reactivations_total 0`,
		`asmserve_step_seconds_count{op="next"} 1`,
		`asmserve_step_seconds_count{op="observe"} 1`,
		`asmserve_step_seconds_bucket{op="next",le="+Inf"} 1`,
		`asmserve_sessions_recovered 0`,
		`asmserve_idle_ttl_seconds 0`,
		"asmserve_pool_bytes ",
		"asmserve_journal_bytes 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestTransparentReactivationHTTP passivates a session behind the HTTP
// layer's back and verifies clients never notice: status and next both
// reactivate through the manager and answer as if nothing happened.
func TestTransparentReactivationHTTP(t *testing.T) {
	reg := serve.NewRegistry()
	if err := reg.RegisterLoader("tiny", func() (*graph.Graph, error) {
		spec, err := gen.Dataset("synth-nethept")
		if err != nil {
			return nil, err
		}
		return spec.Generate(0.05)
	}); err != nil {
		t.Fatal(err)
	}
	mgr := serve.NewManager(reg, 16, serve.WithJournalDir(t.TempDir()))
	ts := httptest.NewServer(newHandler(mgr, 0))
	t.Cleanup(func() {
		ts.Close()
		mgr.CloseAll()
	})

	var st statusResponse
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", EtaFrac: 0.3, Seed: 5, Workers: 1}, &st); code != http.StatusCreated {
		t.Fatalf("create: code %d", code)
	}
	base := ts.URL + "/v1/sessions/" + st.ID
	var batch batchResponse
	if code := call(t, "POST", base+"/next", nil, &batch); code != 200 {
		t.Fatalf("next: code %d", code)
	}
	var prog progressResponse
	if code := call(t, "POST", base+"/observe", observeRequest{Activated: batch.Seeds}, &prog); code != 200 {
		t.Fatalf("observe: code %d", code)
	}

	if ok, err := mgr.Passivate(st.ID); err != nil || !ok {
		t.Fatalf("Passivate: ok=%v err=%v", ok, err)
	}
	var after statusResponse
	if code := call(t, "GET", base, nil, &after); code != 200 {
		t.Fatalf("status on passivated session: code %d", code)
	}
	if after.Phase != "propose" || after.Passivations != 1 || after.Round != 1 {
		t.Errorf("status after reactivation %+v", after)
	}

	if ok, err := mgr.Passivate(st.ID); err != nil || !ok {
		t.Fatalf("second Passivate: ok=%v err=%v", ok, err)
	}
	if code := call(t, "POST", base+"/next", nil, &batch); code != 200 || batch.Round != 2 {
		t.Errorf("next on passivated session: code %d batch %+v", code, batch)
	}

	var health healthResponse
	if code := call(t, "GET", ts.URL+"/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz: code %d", code)
	}
	if health.Passivations != 2 || health.Reactivations != 2 || health.Passivated != 0 {
		t.Errorf("healthz counters %+v", health)
	}
	// The memory gauges live on /metrics (healthz stays O(1)).
	body, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer body.Body.Close()
	text, err := io.ReadAll(body.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "asmserve_journal_bytes ") ||
		strings.Contains(string(text), "asmserve_journal_bytes 0\n") {
		t.Errorf("metrics journal bytes not positive:\n%s", text)
	}
}

// TestReactivationFailureIs500 pins the error mapping when a passivated
// session cannot be revived: the session exists, so the client must see
// a server-side 500 (operator's problem), never a 404 that reads as
// "your campaign was deleted".
func TestReactivationFailureIs500(t *testing.T) {
	dir := t.TempDir()
	reg := serve.NewRegistry()
	if err := reg.RegisterLoader("tiny", func() (*graph.Graph, error) {
		spec, err := gen.Dataset("synth-nethept")
		if err != nil {
			return nil, err
		}
		return spec.Generate(0.05)
	}); err != nil {
		t.Fatal(err)
	}
	mgr := serve.NewManager(reg, 16, serve.WithJournalDir(dir))
	ts := httptest.NewServer(newHandler(mgr, 0))
	t.Cleanup(func() {
		ts.Close()
		mgr.CloseAll()
	})

	var st statusResponse
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", EtaFrac: 0.3, Seed: 21, Workers: 1}, &st); code != http.StatusCreated {
		t.Fatalf("create: code %d", code)
	}
	if ok, err := mgr.Passivate(st.ID); err != nil || !ok {
		t.Fatalf("Passivate: ok=%v err=%v", ok, err)
	}
	// Rot the log: the reactivation replay must refuse.
	wal := filepath.Join(dir, st.ID+".wal")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var errBody errorResponse
	if code := call(t, "GET", ts.URL+"/v1/sessions/"+st.ID, nil, &errBody); code != http.StatusInternalServerError {
		t.Errorf("status on damaged passivated session: code %d (%s), want 500", code, errBody.Error)
	}
	// Unknown ids are still the caller's 404.
	if code := call(t, "GET", ts.URL+"/v1/sessions/s99", nil, &errBody); code != http.StatusNotFound {
		t.Errorf("unknown id: code %d, want 404", code)
	}
}

// doRaw issues one request and returns the raw response (body unread),
// for tests that inspect headers or the exact JSON wire form.
func doRaw(t *testing.T, method, url string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRetryAfterOnSessionLimit pins the 429 contract: a create rejected
// by the session limit carries a Retry-After hint.
func TestRetryAfterOnSessionLimit(t *testing.T) {
	reg := serve.NewRegistry()
	if err := reg.RegisterLoader("tiny", func() (*graph.Graph, error) {
		spec, err := gen.Dataset("synth-nethept")
		if err != nil {
			return nil, err
		}
		return spec.Generate(0.05)
	}); err != nil {
		t.Fatal(err)
	}
	mgr := serve.NewManager(reg, 1)
	ts := httptest.NewServer(newHandler(mgr, 0))
	t.Cleanup(func() {
		ts.Close()
		mgr.CloseAll()
	})

	var st statusResponse
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", EtaFrac: 0.05, Seed: 1}, &st); code != http.StatusCreated {
		t.Fatalf("create: code %d", code)
	}
	resp := doRaw(t, "POST", ts.URL+"/v1/sessions", []byte(`{"dataset":"tiny","eta_frac":0.05,"seed":2}`))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit create: code %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Error("429 without Retry-After header")
	} else if secs, err := strconv.Atoi(got); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want a positive integer of seconds", got)
	}
}

// TestBreakerRejectsCreatesWith503 drives the journal-health breaker
// through the HTTP layer: an injected journal-create failure trips it,
// the next create is rejected 503 with a Retry-After bounded by the
// breaker cooldown, and /healthz + /metrics both report the open
// breaker.
func TestBreakerRejectsCreatesWith503(t *testing.T) {
	dir := t.TempDir()
	reg := serve.NewRegistry()
	if err := reg.RegisterLoader("tiny", func() (*graph.Graph, error) {
		spec, err := gen.Dataset("synth-nethept")
		if err != nil {
			return nil, err
		}
		return spec.Generate(0.05)
	}); err != nil {
		t.Fatal(err)
	}
	const cooldown = 30 * time.Second
	mgr := serve.NewManager(reg, 16,
		serve.WithJournalDir(dir), serve.WithBreakerCooldown(cooldown))
	ts := httptest.NewServer(newHandler(mgr, 0))
	t.Cleanup(func() {
		ts.Close()
		mgr.CloseAll()
	})

	// One fault at the journal-create site (scoped to this test's dir;
	// fault plans are process-global, so this test must not run in
	// parallel with anything).
	plan, err := fault.Parse("journal/create-open:times=1:err=io:path=" + dir)
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(plan)
	t.Cleanup(fault.Deactivate)

	var errBody errorResponse
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", EtaFrac: 0.05, Seed: 3}, &errBody); code/100 == 2 {
		t.Fatalf("create with injected journal failure: code %d, want an error", code)
	}

	resp := doRaw(t, "POST", ts.URL+"/v1/sessions", []byte(`{"dataset":"tiny","eta_frac":0.05,"seed":4}`))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create behind open breaker: code %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Error("503 without Retry-After header")
	} else if secs, err := strconv.Atoi(got); err != nil || secs < 1 || secs > int(cooldown.Seconds()) {
		t.Errorf("Retry-After = %q, want 1..%d seconds", got, int(cooldown.Seconds()))
	}

	var health healthResponse
	if code := call(t, "GET", ts.URL+"/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz: code %d", code)
	}
	if health.JournalHealthy {
		t.Error("healthz reports journal_healthy=true with the breaker open")
	}
	metResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metResp.Body.Close()
	text, err := io.ReadAll(metResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"asmserve_journal_breaker_open 1",
		"asmserve_journal_breaker_trips_total 1",
		"asmserve_fault_injections_total 1",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestDegradedSessionOverHTTP pins the degrade policy's wire form: a
// session whose journal dies keeps serving with durable=false and the
// degraded fields set, while fault-free sessions serialize without the
// degraded keys at all (the omitempty contract the CI restart diff
// relies on).
func TestDegradedSessionOverHTTP(t *testing.T) {
	dir := t.TempDir()
	reg := serve.NewRegistry()
	if err := reg.RegisterLoader("tiny", func() (*graph.Graph, error) {
		spec, err := gen.Dataset("synth-nethept")
		if err != nil {
			return nil, err
		}
		return spec.Generate(0.05)
	}); err != nil {
		t.Fatal(err)
	}
	mgr := serve.NewManager(reg, 16,
		serve.WithJournalDir(dir), serve.WithDurabilityPolicy(serve.DegradeToNonDurable))
	ts := httptest.NewServer(newHandler(mgr, 0))
	t.Cleanup(func() {
		ts.Close()
		mgr.CloseAll()
	})

	var st statusResponse
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", EtaFrac: 0.3, Seed: 8, Workers: 1}, &st); code != http.StatusCreated {
		t.Fatalf("create: code %d", code)
	}
	base := ts.URL + "/v1/sessions/" + st.ID

	// Fault-free wire form: no degraded keys at all.
	resp := doRaw(t, "GET", base, nil)
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "degraded") || strings.Contains(string(raw), "last_failure") {
		t.Errorf("healthy status leaks degraded keys: %s", raw)
	}

	// Kill the journal under the session: every append fails for good.
	plan, err := fault.Parse("journal/append-write:times=0:err=io:path=" + dir)
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(plan)
	t.Cleanup(fault.Deactivate)

	var batch batchResponse
	if code := call(t, "POST", base+"/next", nil, &batch); code != 200 {
		t.Fatalf("next with dead journal (degrade policy): code %d, want 200", code)
	}
	fault.Deactivate()

	var after statusResponse
	if code := call(t, "GET", base, nil, &after); code != 200 {
		t.Fatalf("status: code %d", code)
	}
	if after.Durable || !after.Degraded || after.DegradeReason == "" || after.LastFailure == "" {
		t.Errorf("degraded session status %+v, want durable=false degraded=true with reasons", after)
	}
	// The campaign keeps working non-durably.
	var prog progressResponse
	if code := call(t, "POST", base+"/observe", observeRequest{Activated: batch.Seeds}, &prog); code != 200 {
		t.Fatalf("observe on degraded session: code %d", code)
	}

	var health healthResponse
	if code := call(t, "GET", ts.URL+"/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz: code %d", code)
	}
	if health.DegradedTotal != 1 {
		t.Errorf("healthz degraded_total = %d, want 1", health.DegradedTotal)
	}
	metResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metResp.Body.Close()
	text, err := io.ReadAll(metResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"asmserve_sessions_degraded 1",
		"asmserve_sessions_degraded_total 1",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
