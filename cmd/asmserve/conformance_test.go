package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"asti/internal/fault"
	"asti/internal/gen"
	"asti/internal/graph"
	"asti/internal/serve"
)

// conformance_test.go is the executable form of docs/API.md: one
// table-driven case per route × error class in the error-model table,
// plus key-set pins for every success wire shape. If either drifts from
// the document, a test here must fail — update both together.

// confEnv is one server instance the conformance cases run against,
// with fixture helpers for sessions in each lifecycle phase.
type confEnv struct {
	t   *testing.T
	ts  *httptest.Server
	mgr *serve.Manager
}

// newConfEnv builds a server with a working dataset ("tiny"), a loader
// that always fails ("bad"), the given session limit, and any extra
// manager options (journal dir, durability policy, breaker cooldown).
func newConfEnv(t *testing.T, limit int, opts ...serve.ManagerOption) *confEnv {
	t.Helper()
	reg := serve.NewRegistry()
	if err := reg.RegisterLoader("tiny", func() (*graph.Graph, error) {
		spec, err := gen.Dataset("synth-nethept")
		if err != nil {
			return nil, err
		}
		return spec.Generate(0.05)
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterLoader("bad", func() (*graph.Graph, error) {
		return nil, fmt.Errorf("loader failed on purpose")
	}); err != nil {
		t.Fatal(err)
	}
	mgr := serve.NewManager(reg, limit, opts...)
	ts := httptest.NewServer(newHandler(mgr, 0))
	t.Cleanup(func() {
		ts.Close()
		mgr.CloseAll()
	})
	return &confEnv{t: t, ts: ts, mgr: mgr}
}

// create makes a fresh session (phase "propose") and returns its base URL.
func (e *confEnv) create() string {
	e.t.Helper()
	var st statusResponse
	if code := call(e.t, "POST", e.ts.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", EtaFrac: 0.3, Seed: 7, Workers: 1}, &st); code != http.StatusCreated {
		e.t.Fatalf("fixture create: code %d", code)
	}
	return e.ts.URL + "/v1/sessions/" + st.ID
}

// pending makes a session with an unobserved batch (phase "observe").
func (e *confEnv) pending() string {
	e.t.Helper()
	base := e.create()
	var batch batchResponse
	if code := call(e.t, "POST", base+"/next", nil, &batch); code != 200 {
		e.t.Fatalf("fixture next: code %d", code)
	}
	return base
}

// done drives a session to η (phase "done"): η=1, so observing the
// first batch's own seeds reaches the threshold immediately.
func (e *confEnv) done() string {
	e.t.Helper()
	var st statusResponse
	if code := call(e.t, "POST", e.ts.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", Eta: 1, Seed: 7, Workers: 1}, &st); code != http.StatusCreated {
		e.t.Fatalf("fixture create: code %d", code)
	}
	base := e.ts.URL + "/v1/sessions/" + st.ID
	var batch batchResponse
	if code := call(e.t, "POST", base+"/next", nil, &batch); code != 200 {
		e.t.Fatalf("fixture next: code %d", code)
	}
	var prog progressResponse
	if code := call(e.t, "POST", base+"/observe", observeRequest{Activated: batch.Seeds}, &prog); code != 200 {
		e.t.Fatalf("fixture observe: code %d", code)
	}
	if !prog.Done {
		e.t.Fatalf("fixture session not done after observing with eta=1: %+v", prog)
	}
	return base
}

// deleted closes a session and returns its (now dangling) base URL.
func (e *confEnv) deleted() string {
	e.t.Helper()
	base := e.create()
	if code := call(e.t, "DELETE", base, nil, nil); code != 200 {
		e.t.Fatalf("fixture delete: code %d", code)
	}
	return base
}

// conformanceCase is one row of the executable error-model table.
type conformanceCase struct {
	name string
	// request returns (method, url, raw body). Fixtures are built inside
	// so every case is self-contained.
	request func(e *confEnv) (string, string, []byte)
	// wantCode is the documented status.
	wantCode int
	// wantRetryAfter requires a positive integer Retry-After header
	// (the 429/503 contract).
	wantRetryAfter bool
}

// TestConformanceErrorModel runs the docs/API.md error table end to end
// against a live handler: status code, the `{"error": "..."}` body shape
// on every error, and Retry-After on the retryable rejections.
func TestConformanceErrorModel(t *testing.T) {
	cases := []conformanceCase{
		// 400 — malformed requests.
		{name: "400 create broken JSON", wantCode: 400,
			request: func(e *confEnv) (string, string, []byte) {
				return "POST", e.ts.URL + "/v1/sessions", []byte(`{"dataset":`)
			}},
		{name: "400 create unknown field", wantCode: 400,
			request: func(e *confEnv) (string, string, []byte) {
				return "POST", e.ts.URL + "/v1/sessions", []byte(`{"dataset":"tiny","worker":4}`)
			}},
		{name: "400 create trailing data", wantCode: 400,
			request: func(e *confEnv) (string, string, []byte) {
				return "POST", e.ts.URL + "/v1/sessions", []byte(`{"dataset":"tiny"} extra`)
			}},
		{name: "400 create unknown model", wantCode: 400,
			request: func(e *confEnv) (string, string, []byte) {
				return "POST", e.ts.URL + "/v1/sessions", []byte(`{"dataset":"tiny","model":"SIR"}`)
			}},
		{name: "400 create unknown policy", wantCode: 400,
			request: func(e *confEnv) (string, string, []byte) {
				return "POST", e.ts.URL + "/v1/sessions", []byte(`{"dataset":"tiny","policy":"GREEDY"}`)
			}},
		{name: "400 create epsilon out of range", wantCode: 400,
			request: func(e *confEnv) (string, string, []byte) {
				return "POST", e.ts.URL + "/v1/sessions", []byte(`{"dataset":"tiny","epsilon":2}`)
			}},
		{name: "400 create eta beyond n", wantCode: 400,
			request: func(e *confEnv) (string, string, []byte) {
				return "POST", e.ts.URL + "/v1/sessions", []byte(`{"dataset":"tiny","eta":1099511627776}`)
			}},
		{name: "400 observe node out of range", wantCode: 400,
			request: func(e *confEnv) (string, string, []byte) {
				return "POST", e.pending() + "/observe", []byte(`{"activated":[1073741824]}`)
			}},
		{name: "400 observe unknown field", wantCode: 400,
			request: func(e *confEnv) (string, string, []byte) {
				return "POST", e.pending() + "/observe", []byte(`{"activated":[],"activate":[]}`)
			}},

		// 404 — the named thing does not exist.
		{name: "404 status unknown id", wantCode: 404,
			request: func(e *confEnv) (string, string, []byte) {
				return "GET", e.ts.URL + "/v1/sessions/s999", nil
			}},
		{name: "404 next unknown id", wantCode: 404,
			request: func(e *confEnv) (string, string, []byte) {
				return "POST", e.ts.URL + "/v1/sessions/s999/next", nil
			}},
		{name: "404 observe unknown id", wantCode: 404,
			request: func(e *confEnv) (string, string, []byte) {
				return "POST", e.ts.URL + "/v1/sessions/s999/observe", []byte(`{"activated":[]}`)
			}},
		{name: "404 delete unknown id", wantCode: 404,
			request: func(e *confEnv) (string, string, []byte) {
				return "DELETE", e.ts.URL + "/v1/sessions/s999", nil
			}},
		{name: "404 create unknown dataset", wantCode: 404,
			request: func(e *confEnv) (string, string, []byte) {
				return "POST", e.ts.URL + "/v1/sessions", []byte(`{"dataset":"nope"}`)
			}},
		{name: "404 status after delete", wantCode: 404,
			request: func(e *confEnv) (string, string, []byte) {
				return "GET", e.deleted(), nil
			}},

		// 409 — lifecycle conflicts.
		{name: "409 next while batch pending", wantCode: 409,
			request: func(e *confEnv) (string, string, []byte) {
				return "POST", e.pending() + "/next", nil
			}},
		{name: "409 observe before next", wantCode: 409,
			request: func(e *confEnv) (string, string, []byte) {
				return "POST", e.create() + "/observe", []byte(`{"activated":[]}`)
			}},
		{name: "409 double observe", wantCode: 409,
			request: func(e *confEnv) (string, string, []byte) {
				base := e.pending()
				if code := call(e.t, "POST", base+"/observe", observeRequest{}, nil); code != 200 {
					e.t.Fatalf("fixture observe: code %d", code)
				}
				return "POST", base + "/observe", []byte(`{"activated":[]}`)
			}},
		{name: "409 next after done", wantCode: 409,
			request: func(e *confEnv) (string, string, []byte) {
				return "POST", e.done() + "/next", nil
			}},

		// 413 — oversized bodies (the cap is 8 MiB).
		{name: "413 oversized observe body", wantCode: 413,
			request: func(e *confEnv) (string, string, []byte) {
				big := bytes.Repeat([]byte("1234567,"), (8<<20)/8+1)
				body := append([]byte(`{"activated":[`), big...)
				body = append(body, []byte(`1]}`)...)
				return "POST", e.pending() + "/observe", body
			}},
		{name: "413 oversized create body", wantCode: 413,
			request: func(e *confEnv) (string, string, []byte) {
				body := append([]byte(`{"dataset":"`), bytes.Repeat([]byte("x"), 9<<20)...)
				body = append(body, []byte(`"}`)...)
				return "POST", e.ts.URL + "/v1/sessions", body
			}},

		// 500 — server-side failure.
		{name: "500 dataset loader failure", wantCode: 500,
			request: func(e *confEnv) (string, string, []byte) {
				return "POST", e.ts.URL + "/v1/sessions", []byte(`{"dataset":"bad"}`)
			}},
	}

	env := newConfEnv(t, 64)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			method, url, body := tc.request(env)
			runConformanceCase(t, env, tc, method, url, body)
		})
	}

	// 429 needs its own single-slot server.
	t.Run("429 create over session limit", func(t *testing.T) {
		e := newConfEnv(t, 1)
		e.create()
		runConformanceCase(t, e, conformanceCase{wantCode: 429, wantRetryAfter: true},
			"POST", e.ts.URL+"/v1/sessions", []byte(`{"dataset":"tiny","eta_frac":0.3,"seed":9}`))
	})
}

// TestConformancePoisonedSessionIs410 pins the 410 row: a fail-stop
// session whose journal died answers every subsequent step with Gone,
// while status and list keep working and explain why via last_failure.
// Fault plans are process-global — not parallel with other tests.
func TestConformancePoisonedSessionIs410(t *testing.T) {
	dir := t.TempDir()
	e := newConfEnv(t, 16, serve.WithJournalDir(dir))
	base := e.create()

	plan, err := fault.Parse("journal/append-write:times=0:err=io:path=" + dir)
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(plan)
	t.Cleanup(fault.Deactivate)
	// The failing step itself: durability lost mid-request, fail-stop
	// poisons the session. The code for this first failure is not part of
	// the 410 contract — only that it is an error.
	if code := call(t, "POST", base+"/next", nil, nil); code/100 == 2 {
		t.Fatalf("next with dead journal: code %d, want an error", code)
	}
	fault.Deactivate()

	runConformanceCase(t, e, conformanceCase{wantCode: 410}, "POST", base+"/next", nil)
	runConformanceCase(t, e, conformanceCase{wantCode: 410}, "POST", base+"/observe", []byte(`{"activated":[]}`))
	// Status still serves the corpse, with the poisoning recorded.
	var st statusResponse
	if code := call(t, "GET", base, nil, &st); code != 200 {
		t.Fatalf("status on poisoned session: code %d", code)
	}
	if st.Phase != "closed" || st.LastFailure == "" {
		t.Errorf("poisoned status %+v, want phase=closed with last_failure set", st)
	}
}

// TestConformanceBreaker503 pins the 503 row at create: with the
// journal-health breaker open, creates are refused with a Retry-After
// bounded by the cooldown. Not parallel (global fault plan).
func TestConformanceBreaker503(t *testing.T) {
	dir := t.TempDir()
	const cooldown = 30 * time.Second
	e := newConfEnv(t, 16, serve.WithJournalDir(dir), serve.WithBreakerCooldown(cooldown))

	plan, err := fault.Parse("journal/create-open:times=1:err=io:path=" + dir)
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(plan)
	t.Cleanup(fault.Deactivate)
	if code := call(t, "POST", e.ts.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", EtaFrac: 0.3, Seed: 1}, nil); code/100 == 2 {
		t.Fatalf("create with injected journal failure: code %d, want an error", code)
	}
	resp := runConformanceCase(t, e, conformanceCase{wantCode: 503, wantRetryAfter: true},
		"POST", e.ts.URL+"/v1/sessions", []byte(`{"dataset":"tiny","eta_frac":0.3,"seed":2}`))
	if secs, _ := strconv.Atoi(resp.Header.Get("Retry-After")); secs > int(cooldown.Seconds()) {
		t.Errorf("Retry-After %d exceeds the breaker cooldown %v", secs, cooldown)
	}
}

// runConformanceCase issues one request and applies the shared error
// contract: documented status code, `{"error": "..."}` as the exact
// body shape, JSON content type, and Retry-After where required.
func runConformanceCase(t *testing.T, e *confEnv, tc conformanceCase, method, url string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != tc.wantCode {
		t.Fatalf("code %d, want %d (body %s)", resp.StatusCode, tc.wantCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type %q, want application/json", ct)
	}
	// The documented error shape: a JSON object with exactly one key,
	// "error", holding a non-empty message.
	var obj map[string]any
	if err := json.Unmarshal(raw, &obj); err != nil {
		t.Fatalf("error body is not JSON: %v (%s)", err, raw)
	}
	if len(obj) != 1 {
		t.Errorf("error body has keys %v, want exactly [error]", keysOf(obj))
	}
	msg, ok := obj["error"].(string)
	if !ok || msg == "" {
		t.Errorf("error body %s, want non-empty \"error\" string", raw)
	}
	ra := resp.Header.Get("Retry-After")
	if tc.wantRetryAfter {
		if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
			t.Errorf("Retry-After = %q, want a positive integer of seconds", ra)
		}
	} else if ra != "" {
		t.Errorf("unexpected Retry-After %q on a %d", ra, tc.wantCode)
	}
	return resp
}

func keysOf(m map[string]any) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// getKeys issues a request and returns the sorted key set of its JSON
// object response.
func getKeys(t *testing.T, method, url string, body any) []string {
	t.Helper()
	var obj map[string]any
	if code := call(t, method, url, body, &obj); code/100 != 2 {
		t.Fatalf("%s %s: code %d", method, url, code)
	}
	return keysOf(obj)
}

// TestConformanceWireShapes pins the exact key set of every success
// response against docs/API.md. A field added, renamed, or dropped on
// the wire must show up here (and in the document) deliberately.
func TestConformanceWireShapes(t *testing.T) {
	e := newConfEnv(t, 16)

	statusKeys := []string{
		"activated", "checkpoints", "dataset", "done", "durable", "eta",
		"eta_i", "id", "idle_seconds", "last_checkpoint_round", "model",
		"n", "phase", "policy", "pool_bytes", "passivations", "round",
		"sampler_version", "seeds", "select_seconds",
	}
	sort.Strings(statusKeys)

	// POST /v1/sessions → status object (no pending, no failure fields).
	var st statusResponse
	if code := call(t, "POST", e.ts.URL+"/v1/sessions",
		createRequest{Dataset: "tiny", EtaFrac: 0.3, Seed: 3, Workers: 1}, &st); code != 201 {
		t.Fatalf("create: code %d", code)
	}
	base := e.ts.URL + "/v1/sessions/" + st.ID
	if got := getKeys(t, "GET", base, nil); fmt.Sprint(got) != fmt.Sprint(statusKeys) {
		t.Errorf("status keys\n got %v\nwant %v", got, statusKeys)
	}

	// POST next → batch shape; the status now carries "pending" too.
	if got, want := getKeys(t, "POST", base+"/next", nil), []string{"id", "round", "seeds"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("batch keys %v, want %v", got, want)
	}
	withPending := append([]string{"pending"}, statusKeys...)
	sort.Strings(withPending)
	if got := getKeys(t, "GET", base, nil); fmt.Sprint(got) != fmt.Sprint(withPending) {
		t.Errorf("status-with-pending keys\n got %v\nwant %v", got, withPending)
	}

	// POST observe → progress shape.
	if got, want := getKeys(t, "POST", base+"/observe", observeRequest{}),
		[]string{"activated", "done", "eta_i", "id", "newly_activated", "round"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("progress keys %v, want %v", got, want)
	}

	// Collections and scalars.
	if got, want := getKeys(t, "GET", e.ts.URL+"/v1/datasets", nil), []string{"datasets"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("datasets keys %v, want %v", got, want)
	}
	if got, want := getKeys(t, "GET", e.ts.URL+"/v1/sessions", nil), []string{"sessions"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("list keys %v, want %v", got, want)
	}
	if got, want := getKeys(t, "DELETE", base, nil), []string{"closed"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("delete keys %v, want %v", got, want)
	}

	healthKeys := []string{
		"checkpoint_every", "checkpoint_restores", "checkpoints",
		"compactions", "degraded_total", "durability_policy",
		"idle_ttl_seconds", "journal", "journal_healthy",
		"journal_retries", "ok", "passivated", "passivations",
		"poisoned_total", "reactivations", "recovered_sessions", "sessions",
	}
	if got := getKeys(t, "GET", e.ts.URL+"/healthz", nil); fmt.Sprint(got) != fmt.Sprint(healthKeys) {
		t.Errorf("healthz keys\n got %v\nwant %v", got, healthKeys)
	}
}

// TestConformanceMuxLevelErrors documents the transport-level errors the
// Go mux produces before any handler runs: unknown paths are 404 and
// wrong methods on known paths are 405 with an Allow header. These are
// the two deviations from the JSON error body contract.
func TestConformanceMuxLevelErrors(t *testing.T) {
	e := newConfEnv(t, 4)
	resp := doRaw(t, "GET", e.ts.URL+"/v1/nope", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: code %d, want 404", resp.StatusCode)
	}
	resp = doRaw(t, "PUT", e.ts.URL+"/v1/sessions", []byte(`{}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("wrong method: code %d, want 405", resp.StatusCode)
	}
	if resp.Header.Get("Allow") == "" {
		t.Error("405 without Allow header")
	}
}
