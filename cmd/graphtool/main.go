// Command graphtool inspects probabilistic social-network files: summary
// statistics, degree distributions, centrality rankings and quick spread
// estimates — the companion utility for datasets produced by cmd/datagen
// or loaded from edge lists.
//
// Usage:
//
//	graphtool -graph net.edges stats
//	graphtool -dataset synth-nethept -scale 0.5 degrees
//	graphtool -graph net.edges top -by pagerank -k 10
//	graphtool -graph net.edges spread -seeds 3,17,42 -model LT
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"asti/internal/centrality"
	"asti/internal/diffusion"
	"asti/internal/estimator"
	"asti/internal/gen"
	"asti/internal/graph"
	"asti/internal/rng"
	"asti/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphtool:", err)
		os.Exit(1)
	}
}

func run(args []string, w *os.File) error {
	fs := flag.NewFlagSet("graphtool", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "edge-list file to load")
		dataset   = fs.String("dataset", "", "synthetic dataset name (alternative to -graph)")
		scale     = fs.Float64("scale", 1.0, "dataset generation scale (0,1]")
		modelName = fs.String("model", "IC", "diffusion model for spread estimates: IC or LT")
		seeds     = fs.String("seeds", "", "comma-separated seed node ids (spread command)")
		by        = fs.String("by", "pagerank", "ranking for top: pagerank, degree, core")
		k         = fs.Int("k", 10, "how many nodes top prints")
		samples   = fs.Int("samples", 2000, "Monte-Carlo samples for spread")
		seed      = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("need exactly one command: stats, degrees, top, spread (got %q)", fs.Args())
	}
	cmd := fs.Arg(0)

	g, err := loadGraph(*graphPath, *dataset, *scale)
	if err != nil {
		return err
	}
	model, err := parseModel(*modelName)
	if err != nil {
		return err
	}

	switch cmd {
	case "stats":
		return stats(w, g)
	case "degrees":
		return degrees(w, g)
	case "chart":
		return chart(w, g)
	case "top":
		return top(w, g, *by, *k)
	case "spread":
		S, err := parseSeeds(*seeds, g.N())
		if err != nil {
			return err
		}
		est := estimator.MCSpread(g, model, S, nil, *samples, rng.New(*seed))
		fmt.Fprintf(w, "E[I(S)] ≈ %.1f over %d samples (%s model, |S|=%d, n=%d)\n",
			est, *samples, model, len(S), g.N())
		return nil
	default:
		return fmt.Errorf("unknown command %q (stats, degrees, chart, top, spread)", cmd)
	}
}

// chart renders the log-binned degree distribution as an ASCII log-log
// plot (the shape check of the paper's Figure 3, in a terminal).
func chart(w *os.File, g *graph.Graph) error {
	hist := g.DegreeHistogram(graph.TotalDegrees)
	bins := map[int]int64{}
	for _, b := range hist {
		if b.Degree == 0 {
			continue
		}
		bin := 0
		for d := b.Degree; d > 1; d >>= 1 {
			bin++
		}
		bins[bin] += b.Count
	}
	fig := &trace.Figure{
		Title:  fmt.Sprintf("%s — degree distribution (log2-binned)", g.Name()),
		XLabel: "log2(degree bin)",
		YLabel: "fraction of nodes",
	}
	sr := fig.AddSeries("nodes")
	var keys []int
	for k := range bins {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		sr.Add(float64(k), float64(bins[k])/float64(g.N()))
	}
	return fig.Chart(w, trace.ChartOptions{Width: 56, Height: 16, LogY: true})
}

func loadGraph(path, dataset string, scale float64) (*graph.Graph, error) {
	switch {
	case path != "" && dataset != "":
		return nil, fmt.Errorf("-graph and -dataset are mutually exclusive")
	case strings.HasSuffix(path, ".asmg"):
		return graph.LoadBinaryFile(path)
	case path != "":
		return graph.LoadFile(path)
	case dataset != "":
		spec, err := gen.Dataset(dataset)
		if err != nil {
			return nil, err
		}
		return spec.Generate(scale)
	default:
		return nil, fmt.Errorf("need -graph FILE or -dataset NAME")
	}
}

func parseModel(name string) (diffusion.Model, error) {
	switch strings.ToUpper(name) {
	case "IC":
		return diffusion.IC, nil
	case "LT":
		return diffusion.LT, nil
	default:
		return 0, fmt.Errorf("unknown model %q (IC or LT)", name)
	}
}

func parseSeeds(s string, n int32) ([]int32, error) {
	if s == "" {
		return nil, fmt.Errorf("spread needs -seeds id,id,…")
	}
	var out []int32
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("seed %q: %w", part, err)
		}
		if id < 0 || int32(id) >= n {
			return nil, fmt.Errorf("seed %d outside [0, n=%d)", id, n)
		}
		out = append(out, int32(id))
	}
	return out, nil
}

func stats(w *os.File, g *graph.Graph) error {
	typ := "directed"
	if !g.Directed() {
		typ = "undirected"
	}
	core, err := centrality.KCore(g)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "name:        %s\n", g.Name())
	fmt.Fprintf(w, "nodes:       %d\n", g.N())
	fmt.Fprintf(w, "edges:       %d (%s source)\n", g.M(), typ)
	fmt.Fprintf(w, "avg degree:  %.2f\n", g.AvgDegree())
	fmt.Fprintf(w, "max out-deg: %d\n", g.MaxDegree(graph.OutDegrees))
	fmt.Fprintf(w, "largest WCC: %d (%d components)\n", g.LargestWCC(), g.NumWCC())
	fmt.Fprintf(w, "degeneracy:  %d\n", centrality.Degeneracy(core))
	return nil
}

func degrees(w *os.File, g *graph.Graph) error {
	hist := g.DegreeHistogram(graph.TotalDegrees)
	bins := map[int]int64{}
	for _, b := range hist {
		if b.Degree == 0 {
			bins[-1] += b.Count
			continue
		}
		bin := 0
		for d := b.Degree; d > 1; d >>= 1 {
			bin++
		}
		bins[bin] += b.Count
	}
	var keys []int
	for k := range bins {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Fprintln(w, "degree bin      nodes     fraction")
	for _, k := range keys {
		label := "0"
		if k >= 0 {
			label = fmt.Sprintf("[%d,%d)", 1<<k, 1<<(k+1))
		}
		fmt.Fprintf(w, "%-14s %8d  %.3e\n", label, bins[k], float64(bins[k])/float64(g.N()))
	}
	return nil
}

func top(w *os.File, g *graph.Graph, by string, k int) error {
	if k < 1 {
		return fmt.Errorf("-k %d < 1", k)
	}
	var scores []float64
	switch by {
	case "pagerank":
		pr, _, err := centrality.PageRank(g, centrality.PageRankOptions{})
		if err != nil {
			return err
		}
		scores = pr
	case "degree":
		scores = make([]float64, g.N())
		for v := int32(0); v < g.N(); v++ {
			scores[v] = float64(g.OutDegree(v))
		}
	case "core":
		core, err := centrality.KCore(g)
		if err != nil {
			return err
		}
		scores = make([]float64, len(core))
		for v, c := range core {
			scores[v] = float64(c)
		}
	default:
		return fmt.Errorf("unknown ranking %q (pagerank, degree, core)", by)
	}
	order := centrality.Rank(scores)
	if k > len(order) {
		k = len(order)
	}
	fmt.Fprintf(w, "top %d by %s\n", k, by)
	for i := 0; i < k; i++ {
		v := order[i]
		fmt.Fprintf(w, "%3d. node %-8d score %.6g  out-deg %d\n", i+1, v, scores[v], g.OutDegree(v))
	}
	return nil
}
