package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asti/internal/gen"
	"asti/internal/graph"
)

// capture runs the tool with args, returning stdout content.
func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func writeFixture(t *testing.T) string {
	t.Helper()
	g, err := gen.ErdosRenyi("fixture", 50, 4, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := graph.SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStats(t *testing.T) {
	path := writeFixture(t)
	out, err := capture(t, "-graph", path, "stats")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"nodes:", "edges:", "largest WCC:", "degeneracy:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestDegrees(t *testing.T) {
	out, err := capture(t, "-dataset", "synth-nethept", "-scale", "0.05", "degrees")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "degree bin") {
		t.Fatalf("degrees output malformed:\n%s", out)
	}
}

func TestTopRankings(t *testing.T) {
	path := writeFixture(t)
	for _, by := range []string{"pagerank", "degree", "core"} {
		out, err := capture(t, "-graph", path, "-by", by, "-k", "5", "top")
		if err != nil {
			t.Fatalf("%s: %v", by, err)
		}
		if !strings.Contains(out, "top 5 by "+by) {
			t.Fatalf("%s output malformed:\n%s", by, out)
		}
	}
}

func TestSpread(t *testing.T) {
	path := writeFixture(t)
	out, err := capture(t, "-graph", path, "-seeds", "0,1,2", "-samples", "200", "spread")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E[I(S)]") {
		t.Fatalf("spread output malformed:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	path := writeFixture(t)
	cases := [][]string{
		{"stats"},                 // no graph source
		{"-graph", path},          // no command
		{"-graph", path, "bogus"}, // unknown command
		{"-graph", path, "-dataset", "x", "stats"},              // both sources
		{"-graph", path, "spread"},                              // no seeds
		{"-graph", path, "-seeds", "9999", "spread"},            // out of range
		{"-graph", path, "-seeds", "a,b", "spread"},             // unparsable
		{"-graph", path, "-by", "bogus", "top"},                 // unknown ranking
		{"-graph", path, "-model", "bogus", "spread"},           // unknown model
		{"-graph", path, "-k", "0", "top"},                      // bad k
		{"-graph", filepath.Join(t.TempDir(), "nope"), "stats"}, // missing file
	}
	for _, args := range cases {
		if _, err := capture(t, args...); err == nil {
			t.Errorf("args %v did not error", args)
		}
	}
}

func TestChart(t *testing.T) {
	out, err := capture(t, "-dataset", "synth-nethept", "-scale", "0.05", "chart")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"degree distribution", "fraction of nodes", "log10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart output missing %q:\n%s", want, out)
		}
	}
}
