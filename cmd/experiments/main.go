// Command experiments regenerates the paper's tables and figures on the
// synthetic scale-model datasets.
//
// Usage:
//
//	experiments -exp fig4                # one experiment, quick profile
//	experiments -exp all -profile full   # the paper's full protocol
//	experiments -exp table3 -realizations 10
//	experiments -exp export-csv-ic -o sweep.csv
//
// Output is aligned text with the same rows/series as the paper's
// evaluation (figure experiments also render ASCII charts); see
// EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"asti/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp          = fs.String("exp", "all", "experiment id: "+strings.Join(bench.Experiments(), ", ")+", or all")
		profile      = fs.String("profile", "quick", "profile: quick, full, or tiny")
		realizations = fs.Int("realizations", 0, "override the profile's realization count")
		epsilon      = fs.Float64("epsilon", 0, "override the approximation parameter ε")
		scale        = fs.Float64("scale", 0, "override every dataset's generation scale (0 = profile default)")
		workers      = fs.Int("workers", 0, "sampling-engine workers (0 = all cores, 1 = sequential; selections are identical either way)")
		reuse        = fs.Bool("reuse", true, "carry sampling pools across adaptive rounds (speed only; selections are identical)")
		benchOut     = fs.String("bench-out", "", "directory to write machine-readable BENCH_<experiment>.json perf results into (empty = don't)")
		out          = fs.String("o", "", "write the report to a file instead of stdout")
		quiet        = fs.Bool("quiet", false, "suppress per-cell progress lines on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var p bench.Profile
	switch *profile {
	case "quick":
		p = bench.Quick()
	case "full":
		p = bench.Full()
	case "tiny":
		p = bench.Tiny()
	default:
		return fmt.Errorf("unknown profile %q (quick, full, tiny)", *profile)
	}
	if *realizations > 0 {
		p.Realizations = *realizations
	}
	if *epsilon > 0 {
		p.Epsilon = *epsilon
	}
	if *scale > 0 {
		for name := range p.Scales {
			p.Scales[name] = *scale
		}
	}
	if *workers > 0 {
		p.Workers = *workers
	}
	p.DisablePoolReuse = !*reuse

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintf(stderr, "experiments: closing %s: %v\n", *out, cerr)
			}
		}()
		w = f
	}

	var progress io.Writer
	if !*quiet {
		progress = stderr
	}
	r := bench.NewRunner(p, progress)
	r.BenchDir = *benchOut
	return r.Run(*exp, w)
}
