package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-exp", "ablation-adaptivity", "-profile", "tiny", "-quiet"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "OPT(b=1)") {
		t.Fatalf("report malformed:\n%s", out.String())
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	var out, errw bytes.Buffer
	args := []string{"-exp", "table2", "-profile", "tiny", "-quiet", "-o", path}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Table 2") {
		t.Fatalf("file report malformed:\n%s", data)
	}
	if out.Len() != 0 {
		t.Fatalf("stdout not empty when -o is set:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-profile", "bogus"}, &out, &errw); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := run([]string{"-exp", "bogus", "-profile", "tiny"}, &out, &errw); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-not-a-flag"}, &out, &errw); err == nil {
		t.Error("bad flag accepted")
	}
}
