// Command asmvet is the multichecker front end for the project's
// static-analysis suite (internal/analysis). It loads the named
// packages (default ./...), runs every registered analyzer where it
// applies, and prints surviving diagnostics one per line in the
// familiar file:line:col format.
//
// Usage:
//
//	asmvet [-list] [-v] [packages]
//
// Exit codes: 0 clean, 1 diagnostics reported, 2 load or internal
// failure. CI runs `asmvet ./...` as a required step; see
// docs/ANALYSIS.md for the analyzer catalog and the //asm:
// suppression grammar.
package main

import (
	"flag"
	"fmt"
	"os"

	"asti/internal/analysis"
	"asti/internal/analysis/load"
	"asti/internal/analysis/passes/detrand"
	"asti/internal/analysis/passes/errclass"
	"asti/internal/analysis/passes/hotpath"
	"asti/internal/analysis/passes/lockcheck"
	"asti/internal/analysis/passes/metriclint"
)

// analyzers is the registered suite, in catalog order.
var analyzers = []*analysis.Analyzer{
	detrand.Analyzer,
	errclass.Analyzer,
	hotpath.Analyzer,
	lockcheck.Analyzer,
	metriclint.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	listOnly := flag.Bool("list", false, "list registered analyzers and exit")
	verbose := flag.Bool("v", false, "print per-package progress to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: asmvet [-list] [-v] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listOnly {
		for _, a := range analyzers {
			verb := "(not suppressible)"
			if a.Verb != "" {
				verb = "//asm:" + a.Verb + "-ok"
			}
			fmt.Printf("%-12s %-22s %s\n", a.Name, verb, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "asmvet:", err)
		return 2
	}
	pkgs, err := load.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asmvet:", err)
		return 2
	}
	if *verbose {
		n := 0
		for _, p := range pkgs {
			if !p.Standard {
				n++
			}
		}
		fmt.Fprintf(os.Stderr, "asmvet: %d module packages loaded\n", n)
	}

	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asmvet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "asmvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
